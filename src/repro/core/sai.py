"""Split aggregation: the paper's contribution (§3.1, §4.3, Figure 6).

``splitAggregate(zeroValue)(seqOp, splitOp, reduceOp, concatOp,
parallelism)`` generalizes ``treeAggregate`` with object-splitting
callbacks so the reduction can run a *scalable* algorithm:

* ``seqOp(U, T) -> U`` — fold one element into an aggregator (unchanged),
* ``splitOp(U, i, n) -> V`` — extract segment ``i`` of ``n`` from an
  aggregator; aggregator (``U``) and segment (``V``) types may differ
  (Figure 7's ``Agg`` vs ``AggSeg`` rationale),
* ``reduceOp(V, V) -> V`` — merge two segments,
* ``concatOp(Seq[V]) -> V`` — reassemble segments into the final value.

Execution (§4.3): a **reduced-result stage** folds every partition and
merges task results per executor in memory (IMM), leaving exactly one
aggregator per executor; a **SpawnRDD** pins one task per holding executor;
those tasks run the PDR ring **reduce-scatter** over ``N * parallelism``
segments; the owned segments are collected to the driver and concatenated.

The executor-local IMM merge operates on whole aggregators, which is the
one operation the four SAI callbacks cannot express when ``U != V``; pass
``merge_op`` (MLlib's existing ``combOp``) for such types. When ``U`` and
``V`` coincide (Figure 7's arrays, the micro-benchmarks), the default
derives the merge from ``splitOp``/``reduceOp`` on the whole-object
segment.

Fault tolerance: with a :class:`~repro.faults.RecoveryPolicy` in effect
(via an armed :class:`~repro.faults.FaultController` or the ``recovery``
argument), the reduce step becomes a detect/recompute/rebuild loop:

1. **detect** — ring recvs carry a failure-detection timeout and every
   holding executor gets a death listener that aborts the collective the
   instant it dies;
2. **recompute** — a dead holder's lost partitions re-run through lineage
   (a partial reduced-result job over only those partitions), and the
   recomputed partials are absorbed into the surviving aggregators under
   a fresh *aggregation epoch* that fences any stale task merges;
3. **rebuild** — a new ring over the survivors (hostname re-sorted), up
   to ``max_ring_attempts`` times, after which the aggregation falls back
   to ``treeAggregate`` over the same lineage.

The overlapped ``pipelined_ring`` collective runs the same loop through
:func:`_ft_pipelined_aggregate`: the stream itself is armored (recv
deadlines, death listeners, a per-chunk delivery ledger) and a mid-stream
fault downgrades to the phased loop above, where rebuilds replay only the
chunk columns the ledger has not acknowledged.

With no policy in effect the code path is the pre-fault-tolerance one,
statement for statement — an unfaulted run is bit-identical.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..comm.ring import ChunkLedger, ScalableCommunicator
from ..obs import CollectiveChosen, CollectiveCompleted, CollectiveCostEstimate, CollectiveDowngraded, RecoveryAction, ResidualNorm
from ..rdd.costing import ELEMENT_OVERHEAD, cost_of
from ..rdd.rdd import RDD
from ..rdd.scheduler import JobFailed
from ..rdd.task_context import TaskContext
from ..serde import sim_sizeof
from ..sim import SimulationError
from .aggregation import fresh_zero, tree_aggregate
from .spawn_rdd import SpawnRDD
from .spec import AggregationSpec, spec_with_legacy, warn_deprecated_kwarg

__all__ = ["split_aggregate"]

SeqOp = Callable[[Any, Any], Any]
SplitOp = Callable[[Any, int, int], Any]
ReduceOp = Callable[[Any, Any], Any]
ConcatOp = Callable[[Sequence[Any]], Any]
MergeOp = Callable[[Any, Any], Any]

#: (executor_id, object_id) pairs as returned by run_reduced_job
Holders = List[Tuple[int, Tuple[int, int]]]


def split_aggregate(rdd: RDD, zero: Any, seq_op: SeqOp, split_op: SplitOp,
                    reduce_op: ReduceOp, concat_op: ConcatOp,
                    spec: Optional[AggregationSpec] = None, *,
                    merge_op: Optional[MergeOp] = None,
                    parallelism: Optional[int] = None,
                    topology_aware: Optional[bool] = None,
                    recovery: Any = None) -> Any:
    """Sparker's ``splitAggregate`` (blocking driver call).

    Returns the fully reduced value of type ``V`` (Figure 6: the action's
    result type is the segment type, produced by ``concatOp``).

    ``spec`` carries every reduction knob (see
    :class:`~repro.core.spec.AggregationSpec`): the collective algorithm
    (``"ring"`` | ``"hd"`` | ``"hierarchical"``, or ``"auto"`` to let the
    cost-model tuner pick algorithm and parallelism from the holders'
    actual wire sizes), the channel parallelism, topology awareness and
    the recovery policy. The ``parallelism`` / ``topology_aware`` /
    ``recovery`` keywords (and an integer passed for ``spec``, the old
    positional parallelism) are deprecated shims mapping onto the spec.

    With no recovery policy in the spec one is taken from the context's
    armed fault controller (``sc.faults``); when neither exists the
    aggregation runs the original, recovery-free path.
    """
    if isinstance(spec, int):
        # the pre-spec signature's 7th positional argument
        warn_deprecated_kwarg("parallelism", "split_aggregate", stacklevel=3)
        spec = AggregationSpec(parallelism=spec)
    spec = spec_with_legacy(spec, "split_aggregate", stacklevel=4,
                            parallelism=parallelism,
                            topology_aware=topology_aware,
                            recovery=recovery)
    spec = AggregationSpec.from_env(spec)
    sc = rdd.sc

    if merge_op is None:
        def merge_op(a: Any, b: Any) -> Any:  # noqa: F811 - documented default
            return reduce_op(split_op(a, 0, 1), split_op(b, 0, 1))

    if rdd.num_partitions() == 0:
        z = fresh_zero(zero)
        return concat_op([split_op(z, i, spec.parallelism)
                          for i in range(spec.parallelism)])

    controller = getattr(sc, "faults", None)
    recovery = spec.recovery
    if recovery is None and controller is not None:
        recovery = controller.recovery

    if spec.compression != "none" and recovery is not None:
        raise ValueError(
            'compression="topk" is incompatible with a recovery policy: '
            "error-feedback residuals live on the executors and die with "
            "them, so a recovered ring would silently lose compensation "
            "state. Disable compression or the recovery policy.")

    # ---- stage 1: reduced-result stage with in-memory merge ---------------
    def partial_func(_idx: int, data: list, ctx: TaskContext) -> Any:
        acc = fresh_zero(zero)
        # Opt-in whole-partition fold (e.g. the batched CSR gradient
        # kernel): the seqOp object declares it and stays responsible for
        # charging the same virtual time the per-element loop would.
        folder = getattr(seq_op, "fold_partition", None)
        if folder is not None:
            return folder(acc, data, ctx)
        for x in data:
            ctx.charge(cost_of(seq_op, acc, x) + ELEMENT_OVERHEAD)
            acc = seq_op(acc, x)
        return acc

    if spec.collective == "pipelined_ring":
        # The overlapped path: stream each executor's finished aggregator
        # into the ring while other partitions are still folding.
        if recovery is None and controller is None:
            return _pipelined_aggregate(sc, rdd, partial_func, merge_op,
                                        spec, split_op, reduce_op, concat_op)
        if recovery is not None:
            # With a recovery policy the stream runs under full fault
            # tolerance: per-chunk delivery fencing lets a rebuilt ring
            # replay only the unacknowledged columns, and an unsalvageable
            # topology downgrades to the phased loop below.
            return _ft_pipelined_aggregate(sc, rdd, partial_func, merge_op,
                                           spec, zero, seq_op, split_op,
                                           reduce_op, concat_op, recovery,
                                           controller)
        # A controller without a recovery policy injects faults the
        # stream could not survive; run the phased path below instead.

    if recovery is None:
        with sc.stopwatch.span("agg.compute"):
            holders = sc.run_reduced_job(rdd, partial_func, merge_op)
        with sc.stopwatch.span("agg.reduce"):
            if spec.compression != "none":
                # Sparsify before pricing: the tuner and the ring both see
                # the compressed wire sizes.
                _compress_holders(sc, spec, holders)
            decision = _choose_collective(sc, spec, holders)
            cid, algorithm, chosen_p, predicted, model = decision
            began = sc.now
            result = _reduce_once(sc, holders, chosen_p,
                                  spec.topology_aware, split_op, reduce_op,
                                  concat_op, algorithm=algorithm,
                                  chunk_bytes=spec.chunk_bytes,
                                  span_id=sc.event_bus.tracer
                                  .collective_span(cid))
            _finish_collective(sc, model, cid, algorithm, chosen_p,
                               predicted, began)
        return result

    # ---- fault-tolerant path ----------------------------------------------
    with sc.stopwatch.span("agg.compute"):
        holders, contributions = sc.run_reduced_job(
            rdd, partial_func, merge_op, detail=True)
    with sc.stopwatch.span("agg.reduce"):
        decision = _choose_collective(sc, spec, holders)
        cid, algorithm, chosen_p, predicted, model = decision
        began = sc.now
        result = _ft_reduce(sc, rdd, partial_func, holders, contributions,
                            zero, seq_op, merge_op, chosen_p,
                            spec.topology_aware, split_op, reduce_op,
                            concat_op, recovery, controller,
                            algorithm=algorithm,
                            chunk_bytes=spec.chunk_bytes,
                            span_id=sc.event_bus.tracer
                            .collective_span(cid))
        _finish_collective(sc, model, cid, algorithm, chosen_p,
                           predicted, began)
    return result


def _holder_value_bytes(sc: Any, holders: Holders) -> float:
    """Mean wire size of the holders' in-memory aggregators.

    This is the ``__sim_size__`` probe, so the density-adaptive sparse
    format prices at its actual encoded size — the tuner sees the same
    bytes the ring would put on the wire.
    """
    total = 0.0
    for executor_id, obj in holders:
        value = sc.executor_by_id(executor_id).object_manager.get(obj)
        total += sim_sizeof(value)
    return total / len(holders)


def _choose_collective(sc: Any, spec: AggregationSpec, holders: Holders
                       ) -> Tuple[int, str, int, float, Any]:
    """Decide this aggregation's ``(algorithm, parallelism)``.

    With ``spec.collective="auto"`` the cost model prices every
    ``algorithm x parallelism_candidates`` pair against the holders'
    measured wire sizes and placement; otherwise the spec's pinned choice
    passes straight through. Returns ``(collective_id, algorithm,
    parallelism, predicted_seconds, model)`` — ``model`` is None unless
    the tuner ran (its prediction feeds the post-run calibration).

    The decision itself is driver-side Python: it schedules no simulation
    events, so a pinned-ring run remains bit-identical to the seed.
    """
    cid = getattr(sc, "_collective_seq", 0) + 1
    sc._collective_seq = cid
    bus = sc.event_bus
    if spec.collective != "auto":
        if bus.active:
            tracer = bus.tracer
            cspan = tracer.open_collective(cid)
            slots = _slots_for(sc, holders)
            value_bytes = _holder_value_bytes(sc, holders)
            num = len(slots) * spec.parallelism
            bus.emit(CollectiveChosen(
                time=sc.now, collective_id=cid, algorithm=spec.collective,
                parallelism=spec.parallelism, source="spec",
                ranks=len(slots), hosts=len({s.hostname for s in slots}),
                value_bytes=value_bytes,
                segment_bytes=value_bytes / num,
                span_id=cspan, parent_span_id=tracer.current_parent))
        return cid, spec.collective, spec.parallelism, 0.0, None

    from ..comm.cost import choose_collective, cost_model_for
    model = cost_model_for(sc)
    slots = _slots_for(sc, holders)
    value_bytes = _holder_value_bytes(sc, holders)
    algorithms = ["ring", "pipelined_ring", "hd"]
    if spec.topology_aware:
        algorithms.append("hierarchical")
    # Degraded holders slow every merge hop they participate in; the ring
    # runs at the pace of its slowest rank, so price the worst penalty.
    health = getattr(sc, "health", None)
    penalty = 1.0
    if health is not None:
        penalty = max((health.compute_penalty(eid) for eid, _ in holders),
                      default=1.0)
    winner, estimates = choose_collective(
        model, value_bytes, slots, algorithms, spec.parallelism_candidates,
        chunk_bytes=spec.chunk_bytes, compute_penalty=penalty)
    predicted = next(est for plan, est in estimates if plan is winner)
    if bus.active:
        tracer = bus.tracer
        cspan = tracer.open_collective(cid)
        for plan, est in estimates:
            bus.emit(CollectiveCostEstimate(
                time=sc.now, collective_id=cid, algorithm=plan.algorithm,
                parallelism=plan.parallelism, predicted=est,
                chosen=plan is winner,
                span_id=tracer.new_span(), parent_span_id=cspan))
        bus.emit(CollectiveChosen(
            time=sc.now, collective_id=cid, algorithm=winner.algorithm,
            parallelism=winner.parallelism, source="auto",
            ranks=winner.ranks, hosts=winner.num_hosts,
            value_bytes=value_bytes, segment_bytes=winner.segment_bytes,
            predicted=predicted,
            span_id=cspan, parent_span_id=tracer.current_parent))
    return cid, winner.algorithm, winner.parallelism, predicted, model


def _finish_collective(sc: Any, model: Any, cid: int, algorithm: str,
                       parallelism: int, predicted: float,
                       began: float) -> None:
    """Close the measurement window: calibrate the model, emit the span."""
    measured = sc.now - began
    if model is not None:
        model.observe(algorithm, predicted, measured)
    if sc.event_bus.active:
        sc.event_bus.emit(CollectiveCompleted(
            time=sc.now, collective_id=cid, algorithm=algorithm,
            parallelism=parallelism, began=began, seconds=measured,
            predicted=predicted,
            span_id=sc.event_bus.tracer.close_collective(cid)))


def _reduce_once(sc: Any, holders: Holders, parallelism: int,
                 topology_aware: bool, split_op: SplitOp,
                 reduce_op: ReduceOp, concat_op: ConcatOp, *,
                 algorithm: str = "ring",
                 faults: Any = None,
                 recv_timeout: Optional[float] = None,
                 watch_deaths: bool = False,
                 chunk_bytes: Optional[float] = None,
                 ledger: Optional[ChunkLedger] = None,
                 span_id: int = -1) -> Any:
    """One SpawnRDD + reduce-scatter + gather pass over ``holders``.

    The default arguments make this exactly the original reduce step;
    ``algorithm`` dispatches the reduce-scatter strategy by registry name
    (:mod:`repro.comm.collectives` — every strategy is bit-identical);
    ``watch_deaths`` additionally aborts the collective (interrupting all
    of its processes) the instant any holding executor dies, so a
    mid-collective crash surfaces immediately instead of via timeout.

    ``chunk_bytes`` sets the target chunk size on the communicator; only
    ``algorithm="pipelined_ring"`` reads it (chunk-level wire/merge
    overlap with every aggregator already in hand — the degraded mode the
    tuner prices, and the rebuild mode under fault tolerance).

    ``ledger`` threads a bound :class:`~repro.comm.ring.ChunkLedger`
    onto the communicator so a pipelined rebuild replays acknowledged
    chunk columns from their recorded reductions instead of the wire.
    """
    comm = ScalableCommunicator(sc.cluster, parallelism=parallelism,
                                topology_aware=topology_aware,
                                slots=_slots_for(sc, holders),
                                bus=sc.event_bus, faults=faults,
                                recv_timeout=recv_timeout)
    comm.set_span(span_id)
    if chunk_bytes is not None:
        comm.chunk_bytes = chunk_bytes
    if ledger is not None:
        comm.ledger = ledger
    spawned = SpawnRDD.from_holders(sc, holders)
    # The SpawnRDD launch validates static placement and reads each
    # executor's aggregator; its (cheap) results stay executor-side —
    # the ring operates on the very same in-memory objects.
    object_by_executor = dict(holders)
    values = []
    for slot in comm.ranked:
        executor = sc.executor_by_id(slot.executor_id)
        value = executor.object_manager.get(
            object_by_executor[slot.executor_id])
        values.append(value)
    spawn_results = sc.run_job(
        spawned, lambda _i, data, _ctx: len(data))
    if len(spawn_results) != len(holders):  # pragma: no cover
        raise RuntimeError("SpawnRDD lost partitions")

    watched = []
    if watch_deaths:
        def on_death(executor: Any) -> None:
            comm.abort(f"executor {executor.executor_id} died "
                       f"mid-collective")
        for executor_id, _ in holders:
            executor = sc.executor_by_id(executor_id)
            executor.add_death_listener(on_death)
            watched.append(executor)
    try:
        proc = sc.env.process(comm.reduce_scatter_gather(
            values, split_op, reduce_op, concat_op, algorithm=algorithm))
        result = sc.env.run(until=proc)
    except BaseException:
        if watch_deaths:
            # Kill any surviving ranks of the failed collective: zombies
            # would keep exchanging segments and burn NIC bandwidth under
            # the rebuilt ring.
            comm.abort("collective failed")
        raise
    finally:
        for executor in watched:
            executor.remove_death_listener(on_death)

    SpawnRDD.cleanup_holders(sc, holders)
    return result


def _slots_for(sc: Any, holders: Holders) -> list:
    slot_by_id = {slot.executor_id: slot
                  for slot in sc.cluster.executors}
    return [slot_by_id[executor_id] for executor_id, _ in holders]


def _ft_reduce(sc: Any, rdd: RDD, partial_func: Callable, holders: Holders,
               contributions: dict, zero: Any, seq_op: SeqOp,
               merge_op: MergeOp, parallelism: int, topology_aware: bool,
               split_op: SplitOp, reduce_op: ReduceOp, concat_op: ConcatOp,
               recovery: Any, controller: Any, *,
               algorithm: str = "ring",
               chunk_bytes: Optional[float] = None,
               ledger: Optional[ChunkLedger] = None,
               span_id: int = -1) -> Any:
    """The detect / recompute / rebuild loop of the fault-tolerant path.

    The loop is algorithm-agnostic: every registered collective surfaces
    a lost peer as :class:`~repro.rdd.executor.ExecutorLost` (recv
    deadline) or an abort interrupt (death listener), the rebuild
    re-ranks the survivors, and the recomputed partials absorb under the
    same epoch fence regardless of message topology. Rebuilds keep the
    chosen ``algorithm`` — a shrunken ring is re-priced only on the next
    aggregation, keeping recovery on the well-trodden path.

    ``ledger`` (pipelined only) carries per-chunk completion records
    across attempts. Before each ring pass it is re-bound to a key of
    the exact holder set, parallelism and aggregation epoch: a retry
    over unchanged holders (link faults) salvages every acknowledged
    chunk column, while a crash — which changes the holder set or, via
    recompute, the epoch — clears the records, because the recomputed
    aggregators invalidate every prior partial reduction.
    """
    agg_job = holders[0][1][0]  # stage 1's job id, for recovery events
    attempts = 0
    epoch = 0
    first_detect: Optional[float] = None
    #: span of the recovery epoch (first detection -> recovered); every
    #: recovery action and recompute job parents to it. Opened lazily so
    #: a fault-free run allocates nothing.
    epoch_span = -1

    def emit(action: str, **kw: Any) -> None:
        nonlocal epoch_span
        if sc.event_bus.active:
            tracer = sc.event_bus.tracer
            if epoch_span < 0:
                epoch_span = tracer.new_span()
            if action == "recovered":
                # The epoch span closes on its own id, like JobEnd does.
                kw.setdefault("span_id", epoch_span)
                kw.setdefault("parent_span_id", span_id)
            else:
                kw.setdefault("span_id", tracer.new_span())
                kw.setdefault("parent_span_id", epoch_span)
        event = RecoveryAction(time=sc.now, action=action, job_id=agg_job,
                               **kw)
        if controller is not None:
            controller.actions.append(event)
        if sc.event_bus.active:
            sc.event_bus.emit(event)

    while attempts < recovery.max_ring_attempts:
        lost = [(eid, obj) for eid, obj in holders
                if not sc.executor_by_id(eid).alive]
        if lost:
            if first_detect is None:
                first_detect = sc.now
            live = [(eid, obj) for eid, obj in holders
                    if sc.executor_by_id(eid).alive]
            lost_parts = sorted(
                p for eid, _ in lost for p in contributions.get(eid, ()))
            for eid, _ in lost:
                emit("partial_recompute", executor_id=eid, attempt=attempts,
                     ranks=len(live),
                     detail=f"partitions {lost_parts} via lineage")
                contributions.pop(eid, None)
            # Lineage recompute: re-run the reduced-result stage over only
            # the dead holders' partitions. The scheduler places them on
            # surviving executors (and survives further losses itself).
            tracer = sc.event_bus.tracer
            tracer.push_parent(epoch_span)
            try:
                new_holders, new_contribs = sc.run_reduced_job(
                    rdd, partial_func, merge_op, partitions=lost_parts,
                    detail=True)
            finally:
                tracer.pop_parent()
            # Fence the surviving aggregators at a fresh epoch so any
            # zombie merge from the original stage raises StaleMergeError,
            # then absorb the recomputed partials.
            epoch += 1
            live_by_id = dict(live)
            for eid, obj in live:
                sc.executor_by_id(eid).object_manager.fence(obj, epoch)
            for eid, temp_obj in new_holders:
                executor = sc.executor_by_id(eid)
                manager = executor.object_manager
                temp_value = manager.get(temp_obj)
                if eid in live_by_id:
                    # The recomputed partial lands on an executor that
                    # already holds an original: merge the two in memory.
                    proc = sc.env.process(manager.absorb(
                        live_by_id[eid], epoch, temp_value, merge_op))
                    sc.env.run(until=proc)
                    manager.clear(temp_obj)
                    contributions[eid] = sorted(
                        contributions.get(eid, []) + new_contribs[eid])
                else:
                    # A fresh holder joins the ring with the recomputed
                    # partial as its aggregator.
                    manager.fence(temp_obj, epoch)
                    live.append((eid, temp_obj))
                    live_by_id[eid] = temp_obj
                    contributions[eid] = sorted(new_contribs[eid])
            holders = live
            # Re-check before ringing: a holder may have died during the
            # recompute job itself.
            continue
        if ledger is not None:
            ledger.bind((tuple(eid for eid, _ in holders), parallelism,
                         epoch), size=len(holders))
        try:
            result = _reduce_once(
                sc, holders, parallelism, topology_aware, split_op,
                reduce_op, concat_op, algorithm=algorithm,
                faults=controller, recv_timeout=recovery.recv_timeout,
                watch_deaths=True, chunk_bytes=chunk_bytes,
                ledger=ledger, span_id=span_id)
        except (JobFailed, SimulationError):
            # Retry budgets below this loop are already exhausted (or the
            # kernel itself broke): rebuilding the ring cannot help.
            raise
        except Exception as exc:
            # ExecutorLost (recv timeout or pinned-task failure), Interrupt
            # (a death listener aborted the collective), StaleMergeError —
            # all mean this ring attempt is dead; rebuild over survivors.
            attempts += 1
            emit("ring_abort", attempt=attempts, ranks=len(holders),
                 detail=str(exc))
            if first_detect is None:
                first_detect = sc.now
            if attempts < recovery.max_ring_attempts:
                emit("ring_rebuild", attempt=attempts, ranks=len(holders))
            continue
        if first_detect is not None:
            emit("recovered", seconds=sc.now - first_detect,
                 attempt=attempts, ranks=len(holders))
        return result

    # ---- ring budget exhausted: fall back to the tree -------------------
    emit("tree_fallback", site="tree", attempt=attempts)
    if not recovery.tree_fallback:
        SpawnRDD.cleanup_holders(sc, holders)
        raise RuntimeError(
            f"split aggregation failed {attempts} ring attempts and tree "
            f"fallback is disabled")
    SpawnRDD.cleanup_holders(sc, holders)
    tracer = sc.event_bus.tracer
    tracer.push_parent(epoch_span)
    try:
        agg = tree_aggregate(rdd, zero, seq_op, merge_op,
                             depth=recovery.tree_depth, imm=True)
    finally:
        tracer.pop_parent()
    result = concat_op([split_op(agg, i, parallelism)
                        for i in range(parallelism)])
    if first_detect is not None:
        emit("recovered", site="tree", seconds=sc.now - first_detect,
             attempt=attempts)
    return result


# ---------------------------------------------------------------------------
# Opt-in top-k compression (the approximate tier)
# ---------------------------------------------------------------------------

def _topk_compress(spec: AggregationSpec, executor: Any, value: Any
                   ) -> Tuple[Any, float, dict]:
    """Sparsify one executor's merged aggregator before it hits the wire.

    Returns ``(compressed, cost_seconds, stats)``. Only the payload is
    sparsified — the loss/weight stats slots always travel exact, so the
    convergence diagnostics stay trustworthy. With ``error_feedback`` the
    unsent remainder accumulates in ``executor.residuals`` (keyed by
    payload size, cleared when the executor dies) and is added back before
    the next selection, so every coordinate is eventually transmitted.

    The sparsification itself costs one pass over the dense payload at
    the platform's merge bandwidth (select + subtract are both linear);
    the caller charges it as virtual time and emits the gauge.
    """
    import numpy as np

    from ..ml.aggregators import FlatAggregator
    from ..serde import DEFAULT_SPARSE_POLICY, topk_sparsify

    if not isinstance(value, FlatAggregator):
        raise TypeError(
            f'compression="topk" needs a FlatAggregator holder, got '
            f"{type(value).__name__}")
    value.to_dense()
    d = value.payload_size
    payload = np.asarray(value.payload, dtype=np.float64)
    if spec.topk_k is not None:
        k = spec.topk_k
    else:
        k = max(1, int(round(spec.topk_ratio * d)))
    k = min(k, d) if d else 0
    key = ("topk", d)
    residual = executor.residuals.get(key) if spec.error_feedback else None
    if residual is not None:
        corrected = payload + residual
    else:
        corrected = payload.copy()
    idx, sent, remainder = topk_sparsify(corrected, max(1, k))
    if spec.error_feedback:
        executor.residuals[key] = remainder
    policy = value.policy or DEFAULT_SPARSE_POLICY
    comp = FlatAggregator(d, value.size_scale, policy=policy)
    comp.payload.scatter_add(idx, sent)
    comp.add_stats(value.loss_sum, value.weight_sum)
    cost = (value.__sim_dense_size__()
            / executor.sc.cluster.config.merge_bandwidth)
    stats = {"k": int(k), "payload_size": int(d),
             "sent_norm": float(np.linalg.norm(sent)),
             "residual_norm": float(np.linalg.norm(remainder))}
    return comp, cost, stats


def _compress_holders(sc: Any, spec: AggregationSpec, holders: Holders,
                      parent_span: int = -1) -> None:
    """Sparsify every holder in place (concurrently, blocking driver call).

    Runs between the reduced-result stage and the collective on the
    classic (non-pipelined) path; the pipelined path folds the same step
    into each executor's cook process instead so it overlaps the stream.
    """
    env = sc.env

    def one(executor_id: int, obj: Tuple[int, int]):
        executor = sc.executor_by_id(executor_id)
        value = executor.object_manager.get(obj)
        comp, cost, stats = _topk_compress(spec, executor, value)
        if cost > 0:
            yield env.timeout(cost)
        executor.object_manager.replace(obj, comp)
        bus = sc.event_bus
        if bus.active:
            bus.emit(ResidualNorm(
                time=sc.now, executor_id=executor_id, job_id=obj[0],
                error_feedback=spec.error_feedback,
                span_id=bus.tracer.new_span(),
                parent_span_id=parent_span, **stats))

    procs = [env.process(one(eid, obj), name=f"topk:{eid}")
             for eid, obj in holders]
    for proc in procs:
        env.run(until=proc)


# ---------------------------------------------------------------------------
# The pipelined (overlapped) aggregation path
# ---------------------------------------------------------------------------

def _plan_placement(sc: Any, rdd: RDD, partitions: Sequence[int]) -> List[int]:
    """Predict, driver-side, which executor each partition will land on.

    Mirrors :meth:`DAGScheduler._pick_executor` with an empty ``tried``
    set (including its skip of health-quarantined executors) — exact as
    long as no task fails. The plan lets the ring be built *before* the
    reduced-result stage finishes. If a fault makes the stage land
    anywhere else, the fault-tolerant wrapper detects the deviation
    after the fact and downgrades to the phased recovery loop.
    """
    alive = [e for e in sc.executors if e.alive]
    if not alive:
        raise RuntimeError("no alive executors in the cluster")
    health = getattr(sc, "health", None)

    def quarantined(executor_id: int) -> bool:
        return health is not None and health.is_quarantined(executor_id)

    pool = [e for e in alive if not quarantined(e.executor_id)] or alive
    plan: List[int] = []
    for position, partition in enumerate(partitions):
        pinned = rdd.pinned_executor(partition)
        if pinned is not None:
            plan.append(pinned)
            continue
        chosen: Optional[int] = None
        for executor_id in rdd.preferred_executors(partition):
            if (sc.executor_by_id(executor_id).alive
                    and not quarantined(executor_id)):
                chosen = executor_id
                break
        if chosen is None:
            chosen = pool[position % len(pool)].executor_id
        plan.append(chosen)
    return plan


def _pipelined_aggregate(sc: Any, rdd: RDD, partial_func: Callable,
                         merge_op: MergeOp, spec: AggregationSpec,
                         split_op: SplitOp, reduce_op: ReduceOp,
                         concat_op: ConcatOp) -> Any:
    """Overlap the reduced-result stage with the ring reduce-scatter.

    The classic path is strictly phased: *every* partition folds, then
    the collective starts. Here the ring is constructed up front from the
    predicted placement and each rank blocks on a per-executor readiness
    event; the partition-completion hook (:class:`ReducedResultTask`'s
    ``on_merged``) fires the event the instant the executor's last
    partition merges, so early finishers stream their chunk columns while
    stragglers are still folding. The merge order inside every ring is
    fixed by topology, not by readiness timing — the result is
    bit-identical to the classic ring.

    With ``compression="topk"`` a per-executor *cook* step sparsifies the
    aggregator between readiness and streaming, overlapping compression
    with the other executors' compute as well.

    If the stage lands partitions anywhere other than planned (impossible
    without faults; defensive), the collective is aborted and — provided
    nothing streamed yet — the reduction reruns on the classic path over
    the actual holders.
    """
    env = sc.env
    bus = sc.event_bus
    partitions = list(range(rdd.num_partitions()))
    plan = _plan_placement(sc, rdd, partitions)
    expected: dict = {}
    planned_order: List[int] = []
    for executor_id in plan:
        if executor_id not in expected:
            planned_order.append(executor_id)
            expected[executor_id] = 0
        expected[executor_id] += 1

    cid = getattr(sc, "_collective_seq", 0) + 1
    sc._collective_seq = cid
    if bus.active:
        bus.tracer.open_collective(cid)
    span_id = bus.tracer.collective_span(cid)

    slot_by_id = {slot.executor_id: slot for slot in sc.cluster.executors}
    slots = [slot_by_id[executor_id] for executor_id in planned_order]
    comm = ScalableCommunicator(sc.cluster, parallelism=spec.parallelism,
                                topology_aware=spec.topology_aware,
                                slots=slots, bus=bus)
    comm.set_span(span_id)
    comm.chunk_bytes = spec.chunk_bytes

    counts: dict = {executor_id: 0 for executor_id in expected}
    merged_objects: dict = {}
    complete = {executor_id: env.event(name=f"agg-complete:{executor_id}")
                for executor_id in planned_order}
    streamable = {executor_id: env.event(name=f"agg-ready:{executor_id}")
                  for executor_id in planned_order}

    def on_merged(executor_id: int, _partition: int,
                  object_id: Tuple[int, int]) -> None:
        merged_objects[executor_id] = object_id
        counts[executor_id] = counts.get(executor_id, 0) + 1
        if counts[executor_id] == expected.get(executor_id):
            event = complete.get(executor_id)
            if event is not None and not event.triggered:
                event.succeed()

    def cook(executor_id: int):
        yield complete[executor_id]
        if spec.compression != "none":
            executor = sc.executor_by_id(executor_id)
            obj = merged_objects[executor_id]
            value = executor.object_manager.get(obj)
            comp, cost, stats = _topk_compress(spec, executor, value)
            if cost > 0:
                yield env.timeout(cost)
            executor.object_manager.replace(obj, comp)
            if bus.active:
                bus.emit(ResidualNorm(
                    time=sc.now, executor_id=executor_id, job_id=obj[0],
                    error_feedback=spec.error_feedback,
                    span_id=bus.tracer.new_span(),
                    parent_span_id=span_id, **stats))
        streamable[executor_id].succeed()

    def fetch_value(executor_id: int) -> Any:
        return sc.executor_by_id(executor_id).object_manager.get(
            merged_objects[executor_id])

    comm.pipeline = [
        (streamable[slot.executor_id],
         lambda eid=slot.executor_id: fetch_value(eid))
        for slot in comm.ranked]

    began = sc.now
    job_id = sc.new_job_id()
    job_proc = env.process(
        sc.dag.run_reduced_job(rdd, partial_func, merge_op, job_id,
                               on_merged=on_merged),
        name="reduced-job")
    cooks = [env.process(cook(executor_id), name=f"cook:{executor_id}")
             for executor_id in planned_order]
    collective = env.process(
        comm.reduce_scatter_gather([None] * len(slots), split_op,
                                   reduce_op, concat_op,
                                   algorithm="pipelined_ring"),
        name="pipelined-collective")

    with sc.stopwatch.span("agg.compute"):
        holders = env.run(until=job_proc)

    deviated = (
        [executor_id for executor_id, _ in holders] != planned_order
        or any(counts.get(executor_id) != expected.get(executor_id)
               for executor_id in expected)
        or any(merged_objects.get(executor_id) != obj
               for executor_id, obj in holders))
    if deviated:  # pragma: no cover - impossible without faults
        comm.abort("pipelined placement deviated from the plan")
        try:
            env.run(until=collective)
        except BaseException:
            pass
        for proc in cooks:
            if proc.is_alive:
                proc.interrupt("pipelined placement deviated")
        if any(event.triggered for event in streamable.values()):
            raise RuntimeError(
                "pipelined ring streamed an aggregator from a deviated "
                "placement; cannot fall back safely")
        with sc.stopwatch.span("agg.reduce"):
            result = _reduce_once(sc, holders, spec.parallelism,
                                  spec.topology_aware, split_op, reduce_op,
                                  concat_op, algorithm="pipelined_ring",
                                  chunk_bytes=spec.chunk_bytes,
                                  span_id=span_id)
            _finish_collective(sc, None, cid, "pipelined_ring",
                               spec.parallelism, 0.0, began)
        return result

    if bus.active:
        value_bytes = _holder_value_bytes(sc, holders)
        num = len(slots) * spec.parallelism
        bus.emit(CollectiveChosen(
            time=sc.now, collective_id=cid, algorithm="pipelined_ring",
            parallelism=spec.parallelism, source="spec", ranks=len(slots),
            hosts=len({s.hostname for s in slots}),
            value_bytes=value_bytes, segment_bytes=value_bytes / num,
            span_id=span_id, parent_span_id=bus.tracer.current_parent))

    with sc.stopwatch.span("agg.reduce"):
        result = env.run(until=collective)
        # began is the *job* start: the completed-span covers the whole
        # overlapped window, which is the number the overlap benchmark
        # compares against compute + reduce of the phased paths.
        _finish_collective(sc, None, cid, "pipelined_ring",
                           spec.parallelism, 0.0, began)
    SpawnRDD.cleanup_holders(sc, holders)
    return result


# ---------------------------------------------------------------------------
# The fault-tolerant pipelined path
# ---------------------------------------------------------------------------

#: downgrade reasons already warned about (warn once per process, per
#: reason; the event stream records every occurrence)
_downgrade_warned: set = set()


def _emit_downgrade(sc: Any, controller: Any, reason: str, detail: str,
                    job_id: int, span_id: int) -> None:
    """Record a pipelined→phased downgrade: obs event plus one warning."""
    bus = sc.event_bus
    if bus.active:
        bus.emit(CollectiveDowngraded(
            time=sc.now, requested="pipelined_ring", actual="ring",
            reason=reason, job_id=job_id, detail=detail,
            span_id=bus.tracer.new_span(), parent_span_id=span_id))
    action = RecoveryAction(time=sc.now, action="streamed_abort",
                            site="pipelined", job_id=job_id,
                            detail=f"{reason}: {detail}",
                            parent_span_id=span_id)
    if controller is not None:
        controller.actions.append(action)
    if bus.active:
        bus.emit(action)
    if reason not in _downgrade_warned:
        _downgrade_warned.add(reason)
        warnings.warn(
            f"pipelined_ring downgraded to the phased fault-tolerant path "
            f"({reason}): {detail}. The result is unaffected; only the "
            f"compute/communication overlap is lost. Further downgrades "
            f"of this kind warn only on the event stream.",
            RuntimeWarning, stacklevel=2)


def _ft_pipelined_aggregate(sc: Any, rdd: RDD, partial_func: Callable,
                            merge_op: MergeOp, spec: AggregationSpec,
                            zero: Any, seq_op: SeqOp, split_op: SplitOp,
                            reduce_op: ReduceOp, concat_op: ConcatOp,
                            recovery: Any, controller: Any) -> Any:
    """The overlapped path under a recovery policy (the resilient stream).

    One streamed attempt runs exactly like :func:`_pipelined_aggregate`,
    but armored: ring recvs carry the policy's failure-detection timeout,
    every planned executor gets a death listener that aborts the
    collective the instant it dies, and a :class:`ChunkLedger` records
    each chunk column the moment all ranks finish reducing it.

    If the stream completes, the result (and, unfaulted, the timing) is
    identical to the fault-free pipelined path. If anything breaks —
    an executor crash (mid-stage or mid-ring), a link fault surfacing as
    a recv timeout, or a placement deviation — the stream is torn down
    and the aggregation downgrades to :func:`_ft_reduce`'s
    detect/recompute/rebuild loop, keeping ``algorithm="pipelined_ring"``
    and the ledger: a rebuild over the *same* holders and epoch (link
    faults) replays acknowledged columns from their recorded reductions
    and re-runs only the unacknowledged slices, while a crash re-keys
    the ledger (new holder set or recompute epoch) and replays from the
    epoch-fenced lineage recompute. Either way the result is
    byte-identical to the phased ring over the same data.
    """
    env = sc.env
    bus = sc.event_bus
    partitions = list(range(rdd.num_partitions()))
    plan = _plan_placement(sc, rdd, partitions)
    expected: dict = {}
    planned_order: List[int] = []
    for executor_id in plan:
        if executor_id not in expected:
            planned_order.append(executor_id)
            expected[executor_id] = 0
        expected[executor_id] += 1

    cid = getattr(sc, "_collective_seq", 0) + 1
    sc._collective_seq = cid
    if bus.active:
        bus.tracer.open_collective(cid)
    span_id = bus.tracer.collective_span(cid)

    slot_by_id = {slot.executor_id: slot for slot in sc.cluster.executors}
    slots = [slot_by_id[executor_id] for executor_id in planned_order]
    comm = ScalableCommunicator(sc.cluster, parallelism=spec.parallelism,
                                topology_aware=spec.topology_aware,
                                slots=slots, bus=bus, faults=controller,
                                recv_timeout=recovery.recv_timeout)
    comm.set_span(span_id)
    comm.chunk_bytes = spec.chunk_bytes
    # Epoch 0 of the chunk ledger: completions recorded by the stream are
    # salvageable by any rebuild over the same holders and epoch.
    ledger = ChunkLedger()
    ledger.bind((tuple(planned_order), spec.parallelism, 0),
                size=len(planned_order))
    comm.ledger = ledger

    aborted = {"failed": False, "reason": ""}

    def abort_stream(reason: str) -> None:
        if not aborted["failed"]:
            aborted["failed"] = True
            aborted["reason"] = reason
            comm.abort(reason)

    def on_death(executor: Any) -> None:
        abort_stream(f"executor {executor.executor_id} died mid-stream")

    watched = []
    for executor_id in planned_order:
        executor = sc.executor_by_id(executor_id)
        executor.add_death_listener(on_death)
        watched.append(executor)

    counts: dict = {executor_id: 0 for executor_id in expected}
    merged_objects: dict = {}
    complete = {executor_id: env.event(name=f"agg-complete:{executor_id}")
                for executor_id in planned_order}
    streamable = {executor_id: env.event(name=f"agg-ready:{executor_id}")
                  for executor_id in planned_order}

    def on_merged(executor_id: int, _partition: int,
                  object_id: Tuple[int, int]) -> None:
        if aborted["failed"]:
            # Merges of a resubmitted stage must not restart the stream.
            return
        merged_objects[executor_id] = object_id
        counts[executor_id] = counts.get(executor_id, 0) + 1
        if counts[executor_id] == expected.get(executor_id):
            event = complete.get(executor_id)
            if event is not None and not event.triggered:
                event.succeed()

    def cook(executor_id: int):
        # No compression leg here: compression="topk" is rejected with a
        # recovery policy at the entry of split_aggregate.
        yield complete[executor_id]
        streamable[executor_id].succeed()

    def fetch_value(executor_id: int) -> Any:
        return sc.executor_by_id(executor_id).object_manager.get(
            merged_objects[executor_id])

    comm.pipeline = [
        (streamable[slot.executor_id],
         lambda eid=slot.executor_id: fetch_value(eid))
        for slot in comm.ranked]

    began = sc.now
    job_id = sc.new_job_id()
    job_proc = env.process(
        sc.dag.run_reduced_job(rdd, partial_func, merge_op, job_id,
                               detail=True, on_merged=on_merged),
        name="reduced-job")
    cooks = [env.process(cook(executor_id), name=f"cook:{executor_id}")
             for executor_id in planned_order]
    collective = env.process(
        comm.reduce_scatter_gather([None] * len(slots), split_op,
                                   reduce_op, concat_op,
                                   algorithm="pipelined_ring"),
        name="pipelined-collective")

    def teardown(reason: str) -> None:
        abort_stream(reason)
        try:
            env.run(until=collective)
        except BaseException:  # noqa: BLE001 - the abort is the point
            pass
        for proc in cooks:
            if proc.is_alive:
                proc.interrupt(reason)
        for executor in watched:
            executor.remove_death_listener(on_death)

    with sc.stopwatch.span("agg.compute"):
        try:
            holders, contributions = env.run(until=job_proc)
        except BaseException:
            # Stage budget exhausted or driver teardown: recovery below
            # this level already failed; don't leave a zombie stream.
            teardown("reduced-result stage failed")
            raise

    deviated = (
        not aborted["failed"]
        and ([executor_id for executor_id, _ in holders] != planned_order
             or any(counts.get(executor_id) != expected.get(executor_id)
                    for executor_id in expected)
             or any(merged_objects.get(executor_id) != obj
                    for executor_id, obj in holders)))

    if not aborted["failed"] and not deviated:
        if bus.active:
            value_bytes = _holder_value_bytes(sc, holders)
            num = len(slots) * spec.parallelism
            bus.emit(CollectiveChosen(
                time=sc.now, collective_id=cid, algorithm="pipelined_ring",
                parallelism=spec.parallelism, source="spec",
                ranks=len(slots), hosts=len({s.hostname for s in slots}),
                value_bytes=value_bytes, segment_bytes=value_bytes / num,
                span_id=span_id, parent_span_id=bus.tracer.current_parent))
        with sc.stopwatch.span("agg.reduce"):
            try:
                result = env.run(until=collective)
            except (JobFailed, SimulationError):
                teardown("collective failed")
                raise
            except Exception as exc:
                # Recv timeout, dropped link, or a late crash: downgrade.
                aborted["reason"] = aborted["reason"] or str(exc)
                aborted["failed"] = True
            else:
                _finish_collective(sc, None, cid, "pipelined_ring",
                                   spec.parallelism, 0.0, began)
                for executor in watched:
                    executor.remove_death_listener(on_death)
                SpawnRDD.cleanup_holders(sc, holders)
                return result

    # ---- stream lost: downgrade to the phased recovery loop ---------------
    reason = "placement_deviation" if deviated else "streamed_abort"
    detail = (aborted["reason"]
              or "reduced-result stage landed off the planned executors")
    teardown(detail)
    _emit_downgrade(sc, controller, reason, detail, job_id, span_id)
    with sc.stopwatch.span("agg.reduce"):
        result = _ft_reduce(sc, rdd, partial_func, holders, contributions,
                            zero, seq_op, merge_op, spec.parallelism,
                            spec.topology_aware, split_op, reduce_op,
                            concat_op, recovery, controller,
                            algorithm="pipelined_ring",
                            chunk_bytes=spec.chunk_bytes, ledger=ledger,
                            span_id=span_id)
        _finish_collective(sc, None, cid, "pipelined_ring",
                           spec.parallelism, 0.0, began)
    return result
