"""In-memory merge (IMM): the mutable object manager (paper §3.2, §4.3).

Under vanilla Spark every task serializes its result immediately and the
driver fetches it — for ML aggregators that means ``executor_cores``
serializations of a potentially huge object per executor per iteration.
IMM instead merges task results *within the executor, in memory*: tasks
update a shared mutable value under a lock, and only the executor's single
merged aggregator ever gets serialized (if at all — split aggregation
reduce-scatters it directly).

Failure semantics follow the paper: IMM breaks the independence of tasks,
so a failed task cannot simply be retried — the shared value may hold a
partial merge. The scheduler reacts by clearing the shared object and
resubmitting the whole stage (cheap, because ML iterations are short). A
``stage_attempt`` tag on every merge guards against a zombie task from a
cleaned-up attempt corrupting the restarted stage's value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, Tuple

from ..obs import ImmMerge
from ..serde import density_of, representation_of, sim_sizeof
from ..sim import Resource

if TYPE_CHECKING:  # pragma: no cover
    from ..rdd.executor import Executor

__all__ = ["MutableObjectManager", "StaleMergeError", "ObjectId"]

#: identifies a shared merged object: (job_id, stage_id)
ObjectId = Tuple[int, int]


class StaleMergeError(Exception):
    """A task from a cleaned-up stage attempt (or a fenced-off aggregation
    epoch) tried to merge its result."""


class _Entry:
    __slots__ = ("value", "stage_attempt", "lock", "merge_count", "epoch",
                 "deposits")

    def __init__(self, stage_attempt: int, lock: Resource):
        self.value: Any = None
        self.stage_attempt = stage_attempt
        self.lock = lock
        self.merge_count = 0
        #: aggregation epoch; 0 until the object is fenced by recovery
        self.epoch = 0
        #: per-partition pending values of the ordered-merge mode; None
        #: on the classic arrival-order path
        self.deposits: Dict[int, Any] = None


class MutableObjectManager:
    """Executor-local store of task-shared mutable values."""

    def __init__(self, executor: "Executor"):
        self.executor = executor
        self.env = executor.env
        self._entries: Dict[ObjectId, _Entry] = {}

    def _entry(self, object_id: ObjectId, stage_attempt: int) -> _Entry:
        entry = self._entries.get(object_id)
        if entry is None or entry.stage_attempt < stage_attempt:
            entry = _Entry(stage_attempt,
                           Resource(self.env, 1,
                                    name=f"imm:{object_id}"))
            self._entries[object_id] = entry
        return entry

    def merge(self, object_id: ObjectId, stage_attempt: int, value: Any,
              reduce_op: Callable[[Any, Any], Any],
              parent_span: int = -1) -> Generator:
        """Process body: merge ``value`` into the shared object.

        The merge runs under the object's lock; merging two values costs a
        pass over the result at the platform's merge bandwidth (plus any
        :class:`~repro.rdd.costing.Costed` annotation on ``reduce_op``).
        No serialization happens — that is the optimization.
        """
        from ..rdd.costing import cost_of

        entry = self._entry(object_id, stage_attempt)
        if entry.stage_attempt != stage_attempt:
            raise StaleMergeError(
                f"stage attempt {stage_attempt} of {object_id} was cleaned "
                f"up (current: {entry.stage_attempt})")
        if entry.epoch != 0:
            raise StaleMergeError(
                f"{object_id} is fenced at epoch {entry.epoch}; un-epoched "
                f"task merges are stale")
        bus = self.executor.sc.event_bus
        lock_asked = self.env.now
        yield entry.lock.acquire()
        lock_wait = self.env.now - lock_asked
        merge_began = self.env.now
        try:
            # Re-check under the lock: a cleanup may have raced in.
            live = self._entries.get(object_id)
            if live is not entry or entry.stage_attempt != stage_attempt:
                raise StaleMergeError(
                    f"{object_id} attempt {stage_attempt} cleaned up mid-merge")
            if entry.epoch != 0:
                raise StaleMergeError(
                    f"{object_id} was fenced at epoch {entry.epoch} mid-merge")
            if entry.value is None:
                entry.value = value
            else:
                merged = reduce_op(entry.value, value)
                cost = (sim_sizeof(merged)
                        / self.executor.sc.cluster.config.merge_bandwidth
                        + cost_of(reduce_op, entry.value, value))
                if cost > 0:
                    yield self.env.timeout(cost)
                entry.value = merged
            entry.merge_count += 1
            if bus.active:
                job_id, stage_id = object_id
                bus.emit(ImmMerge.fast(
                    time=self.env.now,
                    executor_id=self.executor.executor_id, job_id=job_id,
                    stage_id=stage_id, merge_index=entry.merge_count - 1,
                    nbytes=sim_sizeof(value), lock_wait=lock_wait,
                    merge_time=self.env.now - merge_began,
                    representation=representation_of(entry.value),
                    density=density_of(entry.value),
                    span_id=bus.tracer.new_span(),
                    parent_span_id=parent_span))
        finally:
            entry.lock.release()

    # ----------------------------------------------------- ordered merging
    def deposit(self, object_id: ObjectId, stage_attempt: int,
                partition: int, value: Any) -> None:
        """Stash one partition's partial for a deferred ordered fold.

        The ordered-merge mode of the multi-tenant service (DESIGN.md §16):
        instead of folding task results in completion order — which makes
        the float fold sensitive to cross-job timing — tasks deposit their
        partials keyed by partition, and the scheduler folds them in sorted
        partition order at stage end via :meth:`fold_deposits`. Depositing
        consumes no virtual time; the fold charges the same per-merge cost
        formula as :meth:`merge`.
        """
        entry = self._entry(object_id, stage_attempt)
        if entry.stage_attempt != stage_attempt:
            raise StaleMergeError(
                f"stage attempt {stage_attempt} of {object_id} was cleaned "
                f"up (current: {entry.stage_attempt})")
        if entry.epoch != 0:
            raise StaleMergeError(
                f"{object_id} is fenced at epoch {entry.epoch}; ordered "
                f"deposits are stale")
        if entry.deposits is None:
            entry.deposits = {}
        entry.deposits[partition] = value

    def fold_deposits(self, object_id: ObjectId, stage_attempt: int,
                      reduce_op: Callable[[Any, Any], Any],
                      parent_span: int = -1) -> Generator:
        """Process body: fold deposited partials in sorted partition order.

        Deterministic regardless of task completion order: the fold
        sequence is fixed by partition index, so a job's merged aggregator
        is byte-identical whether its tasks ran alone or interleaved with
        other tenants'. Each non-initial merge charges
        ``sim_sizeof(merged) / merge_bandwidth + cost_of(reduce_op, ...)``
        — the same formula as the arrival-order path.
        """
        from ..rdd.costing import cost_of

        entry = self._entries.get(object_id)
        if entry is None or entry.stage_attempt != stage_attempt:
            current = None if entry is None else entry.stage_attempt
            raise StaleMergeError(
                f"fold of {object_id} attempt {stage_attempt} is stale "
                f"(current: {current})")
        bus = self.executor.sc.event_bus
        deposits, entry.deposits = entry.deposits, None
        for partition in sorted(deposits or ()):
            value = deposits[partition]
            merge_began = self.env.now
            if entry.value is None:
                entry.value = value
            else:
                merged = reduce_op(entry.value, value)
                cost = (sim_sizeof(merged)
                        / self.executor.sc.cluster.config.merge_bandwidth
                        + cost_of(reduce_op, entry.value, value))
                if cost > 0:
                    yield self.env.timeout(cost)
                entry.value = merged
            entry.merge_count += 1
            if bus.active:
                job_id, stage_id = object_id
                bus.emit(ImmMerge.fast(
                    time=self.env.now,
                    executor_id=self.executor.executor_id, job_id=job_id,
                    stage_id=stage_id, merge_index=entry.merge_count - 1,
                    nbytes=sim_sizeof(value), lock_wait=0.0,
                    merge_time=self.env.now - merge_began,
                    representation=representation_of(entry.value),
                    density=density_of(entry.value),
                    span_id=bus.tracer.new_span(),
                    parent_span_id=parent_span))
        return entry.value

    # -------------------------------------------------------- epoch fencing
    def fence(self, object_id: ObjectId, epoch: int) -> None:
        """Advance the object's aggregation epoch, fencing stale merges.

        After a fence, any in-flight or replayed task merge tagged with the
        original stage attempt raises :class:`StaleMergeError` — recovery
        owns the object now and absorbs recomputed partials explicitly via
        :meth:`absorb`. Fencing an unknown object is a no-op (the executor
        may have died and been cleared).
        """
        if epoch <= 0:
            raise ValueError(f"epoch must be positive, got {epoch}")
        entry = self._entries.get(object_id)
        if entry is not None and epoch > entry.epoch:
            entry.epoch = epoch

    def epoch_of(self, object_id: ObjectId) -> int:
        entry = self._entries.get(object_id)
        return 0 if entry is None else entry.epoch

    def absorb(self, object_id: ObjectId, epoch: int, value: Any,
               merge_op: Callable[[Any, Any], Any],
               parent_span: int = -1) -> Generator:
        """Process body: merge a recovery-recomputed partial into a fenced
        object.

        Same lock and merge-cost model as :meth:`merge`, but gated on the
        aggregation ``epoch`` instead of the stage attempt: an absorb from
        a superseded recovery round raises :class:`StaleMergeError`.
        """
        from ..rdd.costing import cost_of

        entry = self._entries.get(object_id)
        if entry is None or entry.epoch != epoch:
            current = 0 if entry is None else entry.epoch
            raise StaleMergeError(
                f"absorb into {object_id} at epoch {epoch} is stale "
                f"(current: {current})")
        bus = self.executor.sc.event_bus
        lock_asked = self.env.now
        yield entry.lock.acquire()
        lock_wait = self.env.now - lock_asked
        merge_began = self.env.now
        try:
            live = self._entries.get(object_id)
            if live is not entry or entry.epoch != epoch:
                raise StaleMergeError(
                    f"{object_id} epoch {epoch} superseded mid-absorb")
            if entry.value is None:
                entry.value = value
            else:
                merged = merge_op(entry.value, value)
                cost = (sim_sizeof(merged)
                        / self.executor.sc.cluster.config.merge_bandwidth
                        + cost_of(merge_op, entry.value, value))
                if cost > 0:
                    yield self.env.timeout(cost)
                entry.value = merged
            entry.merge_count += 1
            if bus.active:
                job_id, stage_id = object_id
                bus.emit(ImmMerge.fast(
                    time=self.env.now,
                    executor_id=self.executor.executor_id, job_id=job_id,
                    stage_id=stage_id, merge_index=entry.merge_count - 1,
                    nbytes=sim_sizeof(value), lock_wait=lock_wait,
                    merge_time=self.env.now - merge_began,
                    representation=representation_of(entry.value),
                    density=density_of(entry.value),
                    span_id=bus.tracer.new_span(),
                    parent_span_id=parent_span))
        finally:
            entry.lock.release()

    def get(self, object_id: ObjectId) -> Any:
        """The current merged value (None if nothing merged yet)."""
        entry = self._entries.get(object_id)
        return None if entry is None else entry.value

    def replace(self, object_id: ObjectId, value: Any) -> None:
        """Swap the fully-merged value for ``value`` (same object id).

        Used by the opt-in top-k compression step: once an executor's
        last partition has merged, the driver-side orchestration rewrites
        the aggregator with its sparsified form before the collective
        reads it. Replacing an object that never merged is a driver bug
        and raises ``KeyError``.
        """
        entry = self._entries.get(object_id)
        if entry is None or entry.value is None:
            raise KeyError(f"no merged value to replace for {object_id}")
        entry.value = value

    def merge_count(self, object_id: ObjectId) -> int:
        entry = self._entries.get(object_id)
        return 0 if entry is None else entry.merge_count

    def clear(self, object_id: ObjectId) -> None:
        """Drop the shared object (stage cleanup before resubmission)."""
        self._entries.pop(object_id, None)

    def clear_job(self, job_id: int) -> int:
        """Drop every shared object belonging to ``job_id``.

        Lineage cleanup after a cancelled (or abandoned) service job:
        object ids are ``(job_id, stage_id)``, so a cancelled job's
        partially merged aggregators are identifiable without the driver
        tracking individual stages. Returns the number of objects dropped.
        """
        stale = [oid for oid in self._entries if oid[0] == job_id]
        for oid in stale:
            del self._entries[oid]
        return len(stale)

    def clear_all(self) -> None:
        self._entries.clear()
