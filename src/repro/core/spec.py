"""The unified aggregation configuration: :class:`AggregationSpec`.

The engine's reduction machinery historically grew one keyword argument
at a time — ``parallelism``, ``topology_aware``, ``sparse_aggregation``,
``sparse_policy``, ``batched``, ``host_pool``, ``recovery`` — spread over
``splitAggregate``, the trainers and the workload harness, each reading
its own defaults (and two of them reading the sparse-policy default
*independently*, so a single override could produce mixed policies
mid-job). This module collapses all of that into one frozen value:

* :class:`AggregationSpec` — every reduction knob in one immutable
  dataclass with a :meth:`~AggregationSpec.replace` builder and dict
  round-trip serialization (:meth:`~AggregationSpec.to_dict` /
  :meth:`~AggregationSpec.from_dict`),
* ``collective`` — which reduce-scatter algorithm the split aggregation
  runs (``"ring"`` | ``"hd"`` | ``"hierarchical"`` | ``"pipelined_ring"``,
  see :mod:`repro.comm.collectives`) or ``"auto"`` to let the cost-model
  tuner (:mod:`repro.comm.cost`) pick algorithm + parallelism per call,
* **env-var resolution in one place** — every ``SPARKER_*`` override the
  engine honours is read here (:meth:`AggregationSpec.from_env`,
  :func:`resolve_host_pool`) and nowhere else,
* :func:`resolve_sparse_policy` — the single site that may fall back to
  :data:`~repro.serde.DEFAULT_SPARSE_POLICY`, so the policy used by the
  seqOp accumulator, ``derive_split_ops`` and the wire-format switch is
  one object per job,
* :func:`spec_with_legacy` — the deprecation shim used by every old
  kwarg entry point (emits one ``DeprecationWarning`` per legacy kwarg
  and folds the value onto the spec).

The defaults are **seed-identical**: ``collective="ring"``,
``parallelism=4``, topology-aware, dense, no recovery — a spec-free call
produces bit-for-bit the same reduction as the pre-spec engine. The
tuner (``collective="auto"``) is opt-in because a tuned parallelism
changes the segment grid and therefore the floating-point association.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, fields, replace as _dataclass_replace
from typing import Any, Dict, Mapping, Optional, Tuple

from ..serde.cost import DEFAULT_SPARSE_POLICY, SparsePolicy

__all__ = [
    "COLLECTIVES",
    "COMPRESSIONS",
    "DEFAULT_CHUNK_BYTES",
    "AggregationSpec",
    "resolve_sparse_policy",
    "resolve_host_pool",
    "spec_with_legacy",
    "warn_deprecated_kwarg",
]

#: valid values of :attr:`AggregationSpec.collective`
COLLECTIVES: Tuple[str, ...] = ("auto", "ring", "hd", "hierarchical",
                                "pipelined_ring")

#: valid values of :attr:`AggregationSpec.compression`
COMPRESSIONS: Tuple[str, ...] = ("none", "topk")

#: chunk ceiling (simulated bytes) for ``pipelined_ring`` segment streaming
DEFAULT_CHUNK_BYTES: float = 4.0 * 1024 * 1024

#: every environment variable the engine honours, resolved here only
ENV_COLLECTIVE = "SPARKER_COLLECTIVE"
ENV_PARALLELISM = "SPARKER_PARALLELISM"
ENV_TOPOLOGY_AWARE = "SPARKER_TOPOLOGY_AWARE"
ENV_SPARSE_AGG = "SPARKER_SPARSE_AGG"
ENV_BATCHED = "SPARKER_BATCHED"
ENV_HOST_POOL = "SPARKER_HOST_POOL"
ENV_HOST_POOL_MODE = "SPARKER_HOST_POOL_MODE"
ENV_CHUNK_BYTES = "SPARKER_CHUNK_BYTES"
# deliberately no env var for ``compression``: the approximate tier changes
# results and must be requested explicitly in code, never ambiently.

_FALSY = ("", "0", "false", "no", "off")


def _env_bool(raw: str) -> bool:
    return raw.strip().lower() not in _FALSY


def resolve_sparse_policy(sparse_aggregation: bool,
                          sparse_policy: Optional[SparsePolicy]
                          ) -> Optional[SparsePolicy]:
    """The one place the sparse-policy default may be read.

    Returns the policy object the whole job must share: ``None`` when the
    density-adaptive path is off, the explicit policy when given, and
    :data:`~repro.serde.DEFAULT_SPARSE_POLICY` otherwise. Passing a
    policy implies enabling the mode.
    """
    if sparse_policy is not None:
        return sparse_policy
    if sparse_aggregation:
        return DEFAULT_SPARSE_POLICY
    return None


def resolve_host_pool(value: Any) -> Any:
    """Normalize a host-pool request to a ``HostPool`` or ``None``.

    ``None`` reads the ``SPARKER_HOST_POOL`` / ``SPARKER_HOST_POOL_MODE``
    environment overrides (worker count; unset or <= 1 disables); an int
    is a worker count; anything else is assumed to already be a
    :class:`~repro.rdd.hostpool.HostPool` and passed through.
    """
    from ..rdd.hostpool import HostPool
    if value is None:
        env_size = int(os.environ.get(ENV_HOST_POOL, "0") or "0")
        env_mode = os.environ.get(ENV_HOST_POOL_MODE, "fork")
        # mode "inline" forces a (serial) pool even without a size, so the
        # pool code path itself can be exercised deterministically
        if env_size > 1 or env_mode == "inline":
            return HostPool(env_size, mode=env_mode)
        return None
    if isinstance(value, int):
        return HostPool(value) if value > 1 else None
    return value


@dataclass(frozen=True)
class AggregationSpec:
    """Every reduction knob of one aggregation, as one immutable value.

    Build variants with :meth:`replace`::

        spec = AggregationSpec(collective="auto")
        faster = spec.replace(parallelism=8)

    Fields
    ------
    collective:
        Reduce-scatter algorithm of the split aggregation: ``"ring"``
        (the paper's parallel directed ring), ``"hd"`` (recursive
        halving-doubling), ``"hierarchical"`` (intra-host leader gather +
        inter-host ring), ``"pipelined_ring"`` (chunked non-blocking ring
        that overlaps seqOp compute and merge time with wire time) or
        ``"auto"`` (cost-model tuner picks algorithm and parallelism per
        call).
    parallelism:
        Ring channels per executor (the paper's P, Figure 14); fixes the
        ``N * P`` segment grid. Ignored when the tuner runs.
    parallelism_candidates:
        The P values the ``"auto"`` tuner considers.
    topology_aware:
        Rank executors by hostname (the paper's default) or by id.
        ``"hierarchical"`` requires hostname ranking.
    sparse_aggregation / sparse_policy:
        The density-adaptive wire format (PR 2); a non-None policy
        implies enabling the mode. :meth:`resolved_sparse_policy` is the
        job-wide policy object.
    batched:
        Whole-partition CSR seqOp kernel (host wall-clock only).
    recovery:
        Optional :class:`~repro.faults.RecoveryPolicy` arming the
        fault-tolerant reduce path.
    host_pool:
        Host-side compute pool (int worker count or a ``HostPool``).
    chunk_bytes:
        Chunk ceiling (simulated bytes) for ``"pipelined_ring"``: each
        ring segment streams as ``ceil(segment_bytes / chunk_bytes)``
        independent chunk columns so wire and merge time overlap. Has no
        effect on other collectives or on the reduced values.
    compression / topk_ratio / topk_k / error_feedback:
        The **opt-in approximate tier**: ``compression="topk"`` sends only
        the k largest-magnitude gradient coordinates per executor
        (``topk_k`` absolute, else ``topk_ratio`` of the payload);
        ``error_feedback=True`` keeps the unsent remainder in a
        per-executor residual folded into the next iteration. Never
        enabled implicitly — there is deliberately no env override.
    """

    collective: str = "ring"
    parallelism: int = 4
    parallelism_candidates: Tuple[int, ...] = (1, 2, 4, 8)
    topology_aware: bool = True
    sparse_aggregation: bool = False
    sparse_policy: Optional[SparsePolicy] = None
    batched: bool = False
    recovery: Optional[Any] = None
    host_pool: Optional[Any] = None
    chunk_bytes: float = DEFAULT_CHUNK_BYTES
    compression: str = "none"
    topk_ratio: float = 0.01
    topk_k: Optional[int] = None
    error_feedback: bool = False

    def __post_init__(self) -> None:
        if self.collective not in COLLECTIVES:
            raise ValueError(
                f"collective must be one of {COLLECTIVES}, "
                f"got {self.collective!r}")
        if self.parallelism < 1:
            raise ValueError(
                f"parallelism must be >= 1, got {self.parallelism}")
        candidates = tuple(self.parallelism_candidates)
        if not candidates or any(p < 1 for p in candidates):
            raise ValueError(
                f"parallelism_candidates must be a non-empty tuple of "
                f"positive ints, got {self.parallelism_candidates!r}")
        object.__setattr__(self, "parallelism_candidates", candidates)
        if self.sparse_policy is not None and not self.sparse_aggregation:
            # an explicit policy implies the mode, as the trainers did
            object.__setattr__(self, "sparse_aggregation", True)
        if self.collective == "hierarchical" and not self.topology_aware:
            raise ValueError(
                "collective='hierarchical' groups ranks by hostname and "
                "requires topology_aware=True")
        if self.chunk_bytes <= 0:
            raise ValueError(
                f"chunk_bytes must be > 0, got {self.chunk_bytes}")
        if self.compression not in COMPRESSIONS:
            raise ValueError(
                f"compression must be one of {COMPRESSIONS}, "
                f"got {self.compression!r}")
        if not 0.0 < self.topk_ratio <= 1.0:
            raise ValueError(
                f"topk_ratio must be in (0, 1], got {self.topk_ratio}")
        if self.topk_k is not None and self.topk_k < 1:
            raise ValueError(f"topk_k must be >= 1, got {self.topk_k}")
        if self.error_feedback and self.compression == "none":
            raise ValueError(
                "error_feedback=True requires compression='topk' — the "
                "residual accumulator only exists on the approximate tier")

    # -------------------------------------------------------------- builders
    def replace(self, **changes: Any) -> "AggregationSpec":
        """A copy with ``changes`` applied (dataclasses.replace)."""
        return _dataclass_replace(self, **changes)

    @classmethod
    def from_env(cls, base: Optional["AggregationSpec"] = None,
                 environ: Optional[Mapping[str, str]] = None
                 ) -> "AggregationSpec":
        """Apply the ``SPARKER_*`` environment overrides onto ``base``.

        This is the engine's single reader of aggregation-related
        environment variables; unset variables leave the base untouched.
        """
        spec = base if base is not None else cls()
        env = os.environ if environ is None else environ
        changes: Dict[str, Any] = {}
        raw = env.get(ENV_COLLECTIVE)
        if raw:
            changes["collective"] = raw.strip().lower()
        raw = env.get(ENV_PARALLELISM)
        if raw:
            changes["parallelism"] = int(raw)
        raw = env.get(ENV_TOPOLOGY_AWARE)
        if raw is not None:
            changes["topology_aware"] = _env_bool(raw)
        raw = env.get(ENV_SPARSE_AGG)
        if raw is not None:
            changes["sparse_aggregation"] = _env_bool(raw)
        raw = env.get(ENV_BATCHED)
        if raw is not None:
            changes["batched"] = _env_bool(raw)
        raw = env.get(ENV_HOST_POOL)
        if raw:
            changes["host_pool"] = int(raw)
        raw = env.get(ENV_CHUNK_BYTES)
        if raw:
            changes["chunk_bytes"] = float(raw)
        return spec.replace(**changes) if changes else spec

    # ------------------------------------------------------------ resolution
    @property
    def resolved_sparse_policy(self) -> Optional[SparsePolicy]:
        """The job-wide sparse policy (see :func:`resolve_sparse_policy`)."""
        return resolve_sparse_policy(self.sparse_aggregation,
                                     self.sparse_policy)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; :meth:`from_dict` round-trips it exactly.

        ``host_pool`` serializes as its worker count (pool objects do not
        round-trip); ``recovery`` and ``sparse_policy`` serialize field
        by field.
        """
        record: Dict[str, Any] = {
            "collective": self.collective,
            "parallelism": self.parallelism,
            "parallelism_candidates": list(self.parallelism_candidates),
            "topology_aware": self.topology_aware,
            "sparse_aggregation": self.sparse_aggregation,
            "sparse_policy": (dict(self.sparse_policy.__dict__)
                              if self.sparse_policy is not None else None),
            "batched": self.batched,
            "recovery": (dict(self.recovery.__dict__)
                         if self.recovery is not None else None),
            "host_pool": None,
            "chunk_bytes": self.chunk_bytes,
            "compression": self.compression,
            "topk_ratio": self.topk_ratio,
            "topk_k": self.topk_k,
            "error_feedback": self.error_feedback,
        }
        if self.host_pool is not None:
            size = getattr(self.host_pool, "size", self.host_pool)
            record["host_pool"] = int(size)
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "AggregationSpec":
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in record.items() if k in known}
        policy = kwargs.get("sparse_policy")
        if isinstance(policy, Mapping):
            kwargs["sparse_policy"] = SparsePolicy(**policy)
        recovery = kwargs.get("recovery")
        if isinstance(recovery, Mapping):
            from ..faults.plan import RecoveryPolicy
            kwargs["recovery"] = RecoveryPolicy(**recovery)
        candidates = kwargs.get("parallelism_candidates")
        if candidates is not None:
            kwargs["parallelism_candidates"] = tuple(candidates)
        return cls(**kwargs)


# ------------------------------------------------------- deprecation shims
def warn_deprecated_kwarg(name: str, site: str, stacklevel: int = 3) -> None:
    """Emit the standard deprecation warning for one legacy kwarg."""
    warnings.warn(
        f"{site}: the {name!r} keyword is deprecated; pass "
        f"spec=AggregationSpec({name}=...) instead",
        DeprecationWarning, stacklevel=stacklevel)


def spec_with_legacy(spec: Optional[AggregationSpec], site: str,
                     stacklevel: int = 4,
                     **legacy: Any) -> AggregationSpec:
    """Fold non-None legacy kwargs onto ``spec``, warning for each.

    Every old-kwarg entry point funnels through here: legacy values that
    were actually passed (non-None) override the spec field of the same
    name after one :class:`DeprecationWarning` per kwarg. With no legacy
    kwargs this is a pass-through (and allocates nothing new when a spec
    was given).
    """
    if spec is None:
        spec = AggregationSpec()
    changes: Dict[str, Any] = {}
    for name, value in legacy.items():
        if value is None:
            continue
        warn_deprecated_kwarg(name, site, stacklevel)
        changes[name] = value
    return spec.replace(**changes) if changes else spec
