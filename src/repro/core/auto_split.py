"""Automatic split-op derivation (the paper's §6 future-work direction).

The paper notes that split aggregation demands extra user code (splitOp /
reduceOp / concatOp) and suggests that "compiler techniques may be used to
analyze the aggregator to generate split aggregation code without
user-defined code. We plan to explore this approach in the future."

This module implements that idea for the aggregator shapes MLlib-style
code actually uses: objects whose state is a collection of NumPy arrays
plus additive scalars (Figure 7's ``Agg`` with ``sum1``/``sum2`` is the
canonical example). :func:`derive_split_ops` inspects one *prototype*
aggregator instance, builds a field plan, and returns ready-to-use
``(split_op, reduce_op, concat_op, merge_op)`` callbacks:

* every 1-D float array field is split into contiguous blocks,
* every numeric scalar field is treated as additive and carried by
  segment 0,
* nested NumPy arrays of higher rank are flattened views (split on the
  flat index space, reshaped on concat),
* anything else is rejected with a clear error — exactly the situation
  where the paper's explicit interface remains necessary.

The derived callbacks satisfy the SAI algebra (splitting, segment-wise
merging, then concatenation equals whole-object merging) whenever the
object's merge really is element-wise addition, which
:func:`derive_split_ops` verifies on the prototype when ``verify=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..serde import (
    SparsePolicy,
    densify_sparse,
    merge_sparse,
    scatter_into,
    segment_range,
    sim_sizeof,
)
from .spec import AggregationSpec

__all__ = ["derive_split_ops", "AutoSegment", "UnsplittableError",
           "DerivedOps"]


class UnsplittableError(TypeError):
    """The aggregator's state cannot be auto-split.

    Raised when a field is neither a NumPy float array nor an additive
    numeric scalar — the cases where the user must write Figure 6's
    explicit callbacks.
    """


@dataclass
class _FieldPlan:
    name: str
    kind: str  # "array" | "scalar"
    shape: Tuple[int, ...] = ()
    dtype: Any = None
    #: flat offset of this field in the concatenated value space
    offset: int = 0
    length: int = 0


class AutoSegment:
    """A derived segment: a flat slice of the aggregator's value space.

    With a :class:`~repro.serde.SparsePolicy` attached the segment may
    carry its block as coalesced (index, value) pairs instead of a dense
    slice; ``sim_bytes`` stays the dense-equivalent simulated size while
    :meth:`__sim_size__` reports the cheaper wire format, and merges pick
    the sparse-sparse / sparse-dense / dense kernel and densify once the
    union crosses the policy threshold — the same adaptive machinery the
    hand-written :class:`~repro.ml.aggregators.AggregatorSegment` uses.
    """

    __slots__ = ("values", "scalars", "index", "sim_bytes", "indices",
                 "sparse_values", "length", "policy", "owned",
                 "_wire_cache")

    def __init__(self, values: np.ndarray, scalars: Dict[str, float],
                 index: int, sim_bytes: float, *,
                 policy: Optional[SparsePolicy] = None,
                 owned: bool = False):
        self.values = values
        self.scalars = scalars
        self.index = index
        self.sim_bytes = sim_bytes
        self.indices: Optional[np.ndarray] = None
        self.sparse_values: Optional[np.ndarray] = None
        self.length = int(values.size)
        self.policy = policy
        self.owned = bool(owned)
        self._wire_cache: Optional[float] = None

    @classmethod
    def sparse(cls, length: int, indices: np.ndarray, values: np.ndarray,
               scalars: Dict[str, float], index: int, sim_bytes: float, *,
               policy: SparsePolicy,
               owned: bool = True) -> "AutoSegment":
        """A segment from coalesced entries (densifies if over threshold)."""
        if policy.should_densify(indices.size, length):
            return cls(densify_sparse(indices, values, int(length)),
                       scalars, index, sim_bytes, policy=policy,
                       owned=True)
        seg = cls.__new__(cls)
        seg.values = None
        seg.scalars = scalars
        seg.index = index
        seg.sim_bytes = sim_bytes
        seg.indices = indices
        seg.sparse_values = values
        seg.length = int(length)
        seg.policy = policy
        seg.owned = bool(owned)
        seg._wire_cache = None
        return seg

    # ------------------------------------------------------------- properties
    @property
    def is_sparse(self) -> bool:
        return self.values is None

    @property
    def representation(self) -> str:
        return "sparse" if self.values is None else "dense"

    @property
    def nnz(self) -> int:
        return (int(self.indices.size) if self.values is None
                else self.length)

    @property
    def density(self) -> float:
        return (self.nnz / self.length) if self.length else 1.0

    def __sim_size__(self) -> float:
        # Memoized like AggregatorSegment: sparse segments are immutable
        # after construction, so the wire size is computed at most once.
        if self.values is not None or self.policy is None:
            return self.sim_bytes
        size = self._wire_cache
        if size is None:
            dense = self.policy.dense_wire_bytes(self.length)
            scale = self.sim_bytes / dense if dense > 0 else 1.0
            size = self.policy.wire_bytes(self.indices.size, self.length,
                                          scale)
            self._wire_cache = size
        return size

    def __sim_dense_size__(self) -> float:
        return self.sim_bytes

    def to_array(self) -> np.ndarray:
        """The segment's dense block (the stored slice when dense)."""
        if self.values is not None:
            return self.values
        return densify_sparse(self.indices, self.sparse_values,
                              self.length)

    def __len__(self) -> int:
        return self.length

    # ------------------------------------------------------------- operations
    def merge(self, other: "AutoSegment") -> "AutoSegment":
        if other.length != self.length:
            raise ValueError(
                f"segment shape mismatch: ({self.length},) vs "
                f"({other.length},)")
        scalars = {k: self.scalars[k] + other.scalars[k]
                   for k in self.scalars}
        sim = max(self.sim_bytes, other.sim_bytes)
        policy = self.policy if self.policy is not None else other.policy
        if self.values is not None and other.values is not None:
            if self.owned:
                np.add(self.values, other.values, out=self.values)
                self.scalars = scalars
                self.sim_bytes = sim
                self._wire_cache = None
                return self
            return AutoSegment(self.values + other.values, scalars,
                               self.index, sim, policy=policy, owned=True)
        if self.values is None and other.values is None:
            idx, vals = merge_sparse(self.indices, self.sparse_values,
                                     other.indices, other.sparse_values)
            return AutoSegment.sparse(self.length, idx, vals, scalars,
                                      self.index, sim, policy=policy)
        if self.values is None:  # sparse self into a copy of dense other
            out = other.values.copy()
            scatter_into(out, self.indices, self.sparse_values)
            return AutoSegment(out, scalars, self.index, sim,
                               policy=policy, owned=True)
        # dense self + sparse other
        if self.owned:
            scatter_into(self.values, other.indices, other.sparse_values)
            self.scalars = scalars
            self.sim_bytes = sim
            self._wire_cache = None
            return self
        out = self.values.copy()
        scatter_into(out, other.indices, other.sparse_values)
        return AutoSegment(out, scalars, self.index, sim, policy=policy,
                           owned=True)

    def __repr__(self) -> str:
        return (f"<AutoSegment idx={self.index} n={self.length} "
                f"{self.representation}>")


@dataclass
class DerivedOps:
    """The generated SAI callbacks (Figure 6 signatures)."""

    split_op: Callable[[Any, int, int], AutoSegment]
    reduce_op: Callable[[AutoSegment, AutoSegment], AutoSegment]
    concat_op: Callable[[Sequence[AutoSegment]], Any]
    merge_op: Callable[[Any, Any], Any]
    #: the inspected field plan, for introspection/tests
    fields: List[_FieldPlan]

    def as_tuple(self) -> Tuple[Callable, Callable, Callable, Callable]:
        return (self.split_op, self.reduce_op, self.concat_op,
                self.merge_op)


def _state_of(obj: Any) -> Dict[str, Any]:
    state = getattr(obj, "__dict__", None)
    if state:
        return dict(state)
    slots = getattr(type(obj), "__slots__", None)
    if slots:
        return {name: getattr(obj, name) for name in slots
                if hasattr(obj, name)}
    raise UnsplittableError(
        f"{type(obj).__name__} exposes no __dict__ or __slots__ state")


def _plan(prototype: Any) -> List[_FieldPlan]:
    plans: List[_FieldPlan] = []
    offset = 0
    for name, value in sorted(_state_of(prototype).items()):
        if isinstance(value, np.ndarray):
            if not np.issubdtype(value.dtype, np.floating):
                raise UnsplittableError(
                    f"field {name!r}: only float arrays are additive "
                    f"(got dtype {value.dtype})")
            plans.append(_FieldPlan(name, "array", tuple(value.shape),
                                    value.dtype, offset, value.size))
            offset += value.size
        elif isinstance(value, (int, float, np.integer, np.floating)) \
                and not isinstance(value, bool):
            plans.append(_FieldPlan(name, "scalar"))
        else:
            raise UnsplittableError(
                f"field {name!r} of type {type(value).__name__} is not "
                f"auto-splittable; provide explicit splitOp/concatOp")
    if offset == 0:
        raise UnsplittableError(
            f"{type(prototype).__name__} holds no array state to split")
    return plans


def derive_split_ops(prototype: Any, verify: bool = True,
                     policy: Optional[SparsePolicy] = None,
                     spec: Optional[AggregationSpec] = None) -> DerivedOps:
    """Inspect ``prototype`` and generate SAI callbacks for its type.

    ``concat_op`` reconstructs an instance of the prototype's class via
    ``object.__new__`` + state assignment, so the returned value has the
    aggregator's full interface. With ``verify=True`` the derived algebra
    is checked on the prototype itself (split -> merge -> concat equals
    whole-object state doubling). With a ``policy`` the generated
    ``split_op`` emits density-adaptive segments: blocks below the policy
    threshold travel in the sparse (index, value) wire format and every
    merge re-evaluates the representation. Passing ``spec`` instead takes
    the policy from :attr:`AggregationSpec.resolved_sparse_policy` — the
    job-wide resolution site — so derived ops and the seqOp accumulator
    can never disagree about defaults.
    """
    if policy is None and spec is not None:
        policy = spec.resolved_sparse_policy
    plans = _plan(prototype)
    cls = type(prototype)
    array_fields = [p for p in plans if p.kind == "array"]
    scalar_fields = [p for p in plans if p.kind == "scalar"]
    total_len = sum(p.length for p in array_fields)

    def flatten(agg: Any) -> np.ndarray:
        state = _state_of(agg)
        return np.concatenate(
            [np.asarray(state[p.name], dtype=np.float64).reshape(-1)
             for p in array_fields])

    def split_op(agg: Any, index: int, num_segments: int) -> AutoSegment:
        flat = flatten(agg)
        lo, hi = segment_range(total_len, num_segments, index)
        state = _state_of(agg)
        scalars = {p.name: float(state[p.name]) if index == 0 else 0.0
                   for p in scalar_fields}
        frac = (hi - lo) / total_len if total_len else 0.0
        dense_bytes = sim_sizeof(agg) * frac
        block = flat[lo:hi]
        if policy is not None:
            idx = np.flatnonzero(block)
            if not policy.should_densify(idx.size, block.size):
                return AutoSegment.sparse(block.size, idx, block[idx],
                                          scalars, index, dense_bytes,
                                          policy=policy)
        return AutoSegment(block, scalars, index, dense_bytes,
                           policy=policy)

    def reduce_op(a: AutoSegment, b: AutoSegment) -> AutoSegment:
        return a.merge(b)

    def concat_op(segments: Sequence[AutoSegment]) -> Any:
        if not segments:
            raise ValueError("cannot concatenate zero segments")
        ordered = sorted(segments, key=lambda s: s.index)
        flat = np.concatenate([s.to_array() for s in ordered])
        if flat.size != total_len:
            raise ValueError(
                f"segments reassemble to {flat.size} values, expected "
                f"{total_len}")
        out = object.__new__(cls)
        state: Dict[str, Any] = {}
        for p in array_fields:
            block = flat[p.offset:p.offset + p.length]
            state[p.name] = block.reshape(p.shape).astype(p.dtype,
                                                          copy=False)
        for p in scalar_fields:
            state[p.name] = sum(s.scalars[p.name] for s in ordered)
        for name, value in state.items():
            setattr(out, name, value)
        return out

    def merge_op(a: Any, b: Any) -> Any:
        state_a, state_b = _state_of(a), _state_of(b)
        for p in array_fields:
            arr = np.asarray(state_a[p.name])
            arr = arr + np.asarray(state_b[p.name])
            setattr(a, p.name, arr)
        for p in scalar_fields:
            setattr(a, p.name, state_a[p.name] + state_b[p.name])
        return a

    ops = DerivedOps(split_op, reduce_op, concat_op, merge_op, plans)
    if verify:
        _verify(prototype, ops, total_len)
    return ops


def _verify(prototype: Any, ops: DerivedOps, total_len: int) -> None:
    """Check the SAI algebra on the prototype: segment-wise double ==
    whole-object double."""
    n = min(3, max(1, total_len))
    segments = [ops.split_op(prototype, i, n) for i in range(n)]
    doubled = [ops.reduce_op(s, ops.split_op(prototype, s.index, n))
               for s in segments]
    rebuilt = ops.concat_op(doubled)
    state_orig = _state_of(prototype)
    state_new = _state_of(rebuilt)
    for plan in ops.fields:
        if plan.kind == "array":
            expected = 2.0 * np.asarray(state_orig[plan.name],
                                        dtype=np.float64)
            got = np.asarray(state_new[plan.name], dtype=np.float64)
            if not np.allclose(got, expected):
                raise UnsplittableError(
                    f"derived ops fail the merge algebra on field "
                    f"{plan.name!r}: its merge is not element-wise "
                    f"addition")
        else:
            if not np.isclose(float(state_new[plan.name]),
                              2.0 * float(state_orig[plan.name])):
                raise UnsplittableError(
                    f"derived ops fail on scalar field {plan.name!r}")
