"""Tree aggregation: a faithful port of Spark's ``RDD.treeAggregate``.

This is the baseline the paper attacks. The algorithm (Spark 2.x/3.x
``treeAggregate``):

1. **Partial aggregation** — each partition folds its elements into a fresh
   copy of ``zeroValue`` with ``seqOp`` (the "Agg-compute" phase of the
   paper's decompositions).
2. **Tree levels** — while there are many partial aggregators, re-key them
   by ``index mod numPartitions/scale`` and ``foldByKey`` into fewer
   partitions, where ``scale = ceil(numPartitions ** (1/depth))``. Every
   level is a full shuffle of whole aggregators: serialize, transfer,
   deserialize, merge.
3. **Driver reduce** — the surviving partial aggregators are fetched to the
   driver and merged *sequentially on the driver thread*.

Steps 2–3 are the "Agg-reduce" phase; their cost grows with the cluster
because aggregators are indivisible objects here — exactly the paper's
§2.3/§2.4 diagnosis. The ``imm`` variant ("Tree+IMM" in Figure 16) first
merges task results within each executor in memory (no per-task
serialization), then runs the same tree over one aggregator per executor.

Both variants record their phase spans in ``sc.stopwatch`` under
``agg.compute`` / ``agg.reduce`` so the benchmark harness can reproduce the
paper's time decompositions.
"""

from __future__ import annotations

import copy
import math
from typing import Any, Callable, Optional

import numpy as np

from ..rdd.costing import ELEMENT_OVERHEAD, Costed, cost_of
from ..rdd.partitioner import ModuloPartitioner
from ..rdd.rdd import RDD, MapPartitionsRDD, ShuffledRDD
from ..rdd.task_context import TaskContext
from .spawn_rdd import SpawnRDD

__all__ = ["tree_aggregate", "tree_reduce", "fresh_zero"]


def fresh_zero(zero: Any) -> Any:
    """A private copy of ``zeroValue`` for one task.

    Spark ships a serialized copy of the zero value to every task; sharing
    one mutable zero across tasks would alias their accumulators. Callables
    are treated as factories.
    """
    if callable(zero):
        return zero()
    if isinstance(zero, np.ndarray):
        return zero.copy()
    copier = getattr(zero, "copy", None)
    if callable(copier):
        return copier()
    if isinstance(zero, (int, float, complex, str, bytes, bool,
                         type(None))):
        return zero
    return copy.deepcopy(zero)


def _fold_elements(acc: Any, data: list, seq_op: Callable[[Any, Any], Any],
                   ctx: TaskContext) -> Any:
    """Fold ``data`` into ``acc``, charging per-element virtual cost.

    Equivalent to ``ctx.charge(cost_of(seq_op, acc, x) + ELEMENT_OVERHEAD);
    acc = seq_op(acc, x)`` per element, with the ``Costed`` dispatch hoisted
    out of the loop: this runs once per *sample* per iteration, and the
    three wrapper frames per element (``cost_of`` -> ``Costed.cost`` ->
    ``Costed.__call__``) cost more host time than the fold itself. The
    charge accumulation keeps the exact per-element association order
    (``charged + c0 + c1 + ...``), so charges stay bit-identical.
    """
    if isinstance(seq_op, Costed):
        fn = seq_op.fn
        cost_fn = seq_op.cost_fn
        charged = ctx.charged
        if callable(cost_fn):
            for x in data:
                charged += cost_fn(acc, x) + ELEMENT_OVERHEAD
                ctx.charged = charged
                acc = fn(acc, x)
        else:
            step = float(cost_fn) + ELEMENT_OVERHEAD
            for x in data:
                charged += step
                ctx.charged = charged
                acc = fn(acc, x)
        return acc
    for x in data:
        ctx.charge(cost_of(seq_op, acc, x) + ELEMENT_OVERHEAD)
        acc = seq_op(acc, x)
    return acc


def _partial_aggregate_rdd(rdd: RDD, zero: Any,
                           seq_op: Callable[[Any, Any], Any]) -> RDD:
    """Stage-1 RDD: one partial aggregator per partition."""

    def run(_idx: int, data: list, ctx: TaskContext) -> list:
        acc = fresh_zero(zero)
        folder = getattr(seq_op, "fold_partition", None)
        if folder is not None:
            return [folder(acc, data, ctx)]
        return [_fold_elements(acc, data, seq_op, ctx)]

    return MapPartitionsRDD(rdd, run, label="partialAggregate")


def _tree_reduce_phase(sc, partial: RDD, comb_op: Callable[[Any, Any], Any],
                       depth: int) -> Any:
    """Steps 2–3: shuffle tree levels, then the sequential driver merge."""
    num_partitions = partial.num_partitions()
    scale = max(int(math.ceil(num_partitions ** (1.0 / depth))), 2)
    current = partial
    level = 0
    while num_partitions > scale + num_partitions // scale:
        num_partitions //= scale
        target = num_partitions

        def rekey(idx: int, data: list, ctx: TaskContext,
                  _target: int = target) -> list:
            ctx.charge(len(data) * ELEMENT_OVERHEAD)
            return [(idx % _target, agg) for agg in data]

        # Stage names matter: the history-log analyzer (repro.bench.history)
        # classifies aggregation stages by these labels, mirroring how the
        # paper's authors mined Spark history logs. Level 0's map stage
        # contains the partial aggregation (Agg-compute); later levels are
        # pure reduction.
        keyed = MapPartitionsRDD(current, rekey,
                                 label=f"treeAgg:level{level}")
        current = ShuffledRDD(keyed, ModuloPartitioner(target),
                              combine_op=comb_op).values() \
            .set_name("treeAggValues")
        level += 1
    return sc.reduce(current, comb_op)


def tree_aggregate(rdd: RDD, zero: Any, seq_op: Callable[[Any, Any], Any],
                   comb_op: Callable[[Any, Any], Any], depth: int = 2,
                   imm: bool = False) -> Any:
    """Spark's ``treeAggregate(zeroValue)(seqOp, combOp, depth)``.

    With ``imm=True`` this is the paper's "Tree+IMM" variant: stage 1 runs
    as a reduced-result stage that merges task results inside each executor
    in memory, and the tree then reduces one aggregator per executor.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    sc = rdd.sc
    if rdd.num_partitions() == 0:
        return fresh_zero(zero)

    began = sc.now
    log_mark = len(sc.dag.stage_log)

    if imm:
        def partial_func(_idx: int, data: list, ctx: TaskContext) -> Any:
            acc = fresh_zero(zero)
            folder = getattr(seq_op, "fold_partition", None)
            if folder is not None:
                return folder(acc, data, ctx)
            return _fold_elements(acc, data, seq_op, ctx)

        with sc.stopwatch.span("agg.compute"):
            holders = sc.run_reduced_job(rdd, partial_func, comb_op)
        with sc.stopwatch.span("agg.reduce"):
            spawned = SpawnRDD.from_holders(sc, holders)
            result = _tree_reduce_phase(sc, spawned, comb_op, depth)
            SpawnRDD.cleanup_holders(sc, holders)
        return result

    partial = _partial_aggregate_rdd(rdd, zero, seq_op)
    result = _tree_reduce_phase(sc, partial, comb_op, depth)
    # Decompose: the first new stage materialized the partials (compute);
    # everything after it is reduction (paper §2.3 methodology). The first
    # new stage always closed inside _tree_reduce_phase, so its duration
    # is a real number here.
    new_stages = sc.dag.stage_log[log_mark:]
    compute = new_stages[0].duration if new_stages else 0.0
    total = sc.now - began
    sc.stopwatch.add("agg.compute", min(compute, total))
    sc.stopwatch.add("agg.reduce", max(total - compute, 0.0))
    return result


def tree_reduce(rdd: RDD, op: Callable[[Any, Any], Any],
                depth: int = 2) -> Any:
    """Spark's ``treeReduce``: tree aggregation without a zero value."""
    def seq_op(acc: Optional[Any], x: Any) -> Any:
        return x if acc is None else op(acc, x)

    def comb_op(a: Optional[Any], b: Optional[Any]) -> Any:
        if a is None:
            return b
        if b is None:
            return a
        return op(a, b)

    result = tree_aggregate(rdd, None, seq_op, comb_op, depth=depth)
    if result is None:
        raise ValueError("treeReduce() of an empty RDD")
    return result
