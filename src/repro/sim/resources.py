"""Shared-resource primitives: slot resources, token pools, FIFO stores.

Three congestion primitives cover everything the simulated cluster needs:

* :class:`Resource` — ``capacity`` identical slots; models executor task
  slots (CPU cores) and any mutual exclusion.
* :class:`CapacityPool` — a divisible pool of floating-point tokens; models
  NIC bandwidth: a transfer acquires ``rate`` tokens for its duration, so
  concurrent transfers share the NIC up to its line rate and queue beyond it.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``; models
  executor mailboxes and message channels.

All wait queues are strict FIFO, which keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Generator, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["Resource", "CapacityPool", "Store"]


class Resource:
    """A counted resource with ``capacity`` interchangeable slots.

    Usage from a process::

        yield resource.acquire()
        try:
            ...  # hold the slot
        finally:
            resource.release()
    """

    def __init__(self, env: "Environment", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires when a slot has been granted."""
        event = self.env.event(name=f"acquire:{self.name}")
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one held slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() without acquire() on {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)  # slot transfers directly to the waiter
        else:
            self._in_use -= 1

    def use(self, duration: float) -> Generator[Event, Any, None]:
        """Process helper: hold one slot for ``duration`` seconds."""
        yield self.acquire()
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()

    def __repr__(self) -> str:
        return (f"<Resource {self.name!r} {self._in_use}/{self.capacity}"
                f" queued={len(self._waiters)}>")


class CapacityPool:
    """A divisible pool of ``capacity`` floating-point tokens.

    Models link/NIC bandwidth: a transfer running at rate ``r`` bytes/s holds
    ``r`` tokens for its duration. When the pool is exhausted further
    requests queue FIFO, which approximates max-min fair sharing with a
    store-and-forward flavour: aggregate throughput through the pool never
    exceeds ``capacity`` and small flows are never starved (FIFO grant
    order).

    A request larger than the pool's total capacity is clamped to the total
    capacity (a single flow may use the whole NIC but not more).
    """

    _EPS = 1e-9

    def __init__(self, env: "Environment", capacity: float, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.name = name
        self.capacity = float(capacity)
        self._level = float(capacity)
        self._waiters: Deque[tuple] = deque()  # (amount, event)

    @property
    def level(self) -> float:
        """Tokens currently free."""
        return self._level

    @property
    def in_use(self) -> float:
        """Tokens currently held by transfers."""
        return self.capacity - self._level

    @property
    def queue_length(self) -> int:
        """Requests waiting for tokens."""
        return len(self._waiters)

    def acquire(self, amount: float) -> Event:
        """Return an event firing when ``amount`` tokens have been granted.

        The event's value is the amount actually granted (``amount`` clamped
        to the pool capacity); pass it back to :meth:`release`.
        """
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        amount = min(float(amount), self.capacity)
        event = self.env.event(name=f"pool:{self.name}")
        if not self._waiters and self._level + self._EPS >= amount:
            self._level -= amount
            event.succeed(amount)
        else:
            self._waiters.append((amount, event))
        return event

    def release(self, amount: float) -> None:
        """Return ``amount`` tokens and grant as many queued requests as fit."""
        self._level += float(amount)
        if self._level > self.capacity + 1e-6:
            raise RuntimeError(
                f"pool {self.name!r} over-released: level={self._level:g} "
                f"capacity={self.capacity:g}"
            )
        self._drain()

    def _drain(self) -> None:
        while self._waiters:
            amount, event = self._waiters[0]
            if self._level + self._EPS < amount:
                break
            self._waiters.popleft()
            self._level -= amount
            event.succeed(amount)

    def transfer(self, amount_tokens: float,
                 duration: float) -> Generator[Event, Any, None]:
        """Process helper: hold ``amount_tokens`` for ``duration`` seconds."""
        granted = yield self.acquire(amount_tokens)
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(granted)

    def __repr__(self) -> str:
        return (f"<CapacityPool {self.name!r} {self._level:g}/{self.capacity:g}"
                f" queued={len(self._waiters)}>")


class Store:
    """An unbounded FIFO item store with blocking ``get``.

    ``put`` never blocks (channels in this codebase model backpressure at the
    bandwidth layer, not by bounding mailboxes). ``get`` returns an event
    that fires with the oldest item once one is available.
    """

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest blocked getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = self.env.event(name=f"get:{self.name}")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: the next item, or None if empty."""
        if self._items:
            return self._items.popleft()
        return None

    def cancel(self, event: Event) -> bool:
        """Withdraw an abandoned ``get`` event from the waiter queue.

        A getter that timed out must be cancelled, or the next ``put``
        would wake it and the item would vanish into a process that
        stopped listening. Returns False when the event is not queued
        (it already received an item, or was never a getter here).
        """
        try:
            self._getters.remove(event)
        except ValueError:
            return False
        return True

    def __repr__(self) -> str:
        return (f"<Store {self.name!r} items={len(self._items)}"
                f" getters={len(self._getters)}>")
