"""Lightweight instrumentation for simulations.

:class:`Stopwatch` accumulates named spans of virtual time;
:class:`Counter` accumulates named scalar tallies (bytes sent, messages,
merges). Both are plain accumulators — they never affect simulation
behaviour — and are the source of every decomposed-time figure in the
benchmark harness (driver / non-agg / agg-compute / agg-reduce).
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["Stopwatch", "Counter"]


class Stopwatch:
    """Accumulates virtual-time spans under string keys.

    Spans are recorded explicitly (``add(key, seconds)``), bracketed
    (``start``/``stop``), or scoped (``with sw.span(key): ...`` — the
    exception-safe form call sites should prefer). Overlapping brackets
    for the same key are not allowed — each key is a single logical
    timeline.

    ``on_record(key, seconds, now)`` is invoked after every recording;
    the engine uses it to mirror spans onto its observability bus. The
    callback must not advance virtual time.
    """

    def __init__(self, env: "Environment",
                 on_record: Optional[Callable[[str, float, float],
                                              None]] = None):
        self.env = env
        self.on_record = on_record
        self._total: Dict[str, float] = defaultdict(float)
        self._open: Dict[str, float] = {}

    def add(self, key: str, seconds: float) -> None:
        """Record ``seconds`` of virtual time under ``key``."""
        if seconds < 0:
            raise ValueError(f"negative span for {key!r}: {seconds}")
        self._total[key] += seconds
        if self.on_record is not None:
            self.on_record(key, seconds, self.env.now)

    @contextmanager
    def span(self, key: str):
        """Scoped bracket: records ``key`` even when the body raises.

        The ``start``/``stop`` pair leaks an open bracket (and loses the
        span) when an exception unwinds between the calls; ``span`` always
        closes, charging whatever virtual time elapsed up to the raise.
        """
        began = self.env.now
        try:
            yield self
        finally:
            self.add(key, self.env.now - began)

    def start(self, key: str) -> None:
        """Open a bracket for ``key`` at the current virtual time."""
        if key in self._open:
            raise RuntimeError(f"span {key!r} is already open")
        self._open[key] = self.env.now

    def stop(self, key: str) -> float:
        """Close the bracket for ``key``; returns the elapsed span."""
        try:
            began = self._open.pop(key)
        except KeyError:
            raise RuntimeError(f"span {key!r} was never started") from None
        span = self.env.now - began
        self.add(key, span)
        return span

    def total(self, key: str) -> float:
        """Accumulated time for ``key`` (0.0 if never recorded)."""
        return self._total.get(key, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """All accumulated spans as a plain dict."""
        return dict(self._total)

    def clear(self) -> None:
        """Drop all recorded spans and open brackets."""
        self._total.clear()
        self._open.clear()

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._total.items()))

    def __repr__(self) -> str:
        spans = ", ".join(f"{k}={v:.6g}" for k, v in self)
        return f"<Stopwatch {spans}>"


class Counter:
    """Accumulates scalar tallies under string keys."""

    def __init__(self) -> None:
        self._total: Dict[str, float] = defaultdict(float)

    def add(self, key: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the tally under ``key``."""
        self._total[key] += amount

    def total(self, key: str) -> float:
        """Accumulated tally for ``key`` (0.0 if never recorded)."""
        return self._total.get(key, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """All tallies as a plain dict."""
        return dict(self._total)

    def clear(self) -> None:
        """Drop all tallies."""
        self._total.clear()

    def __repr__(self) -> str:
        tallies = ", ".join(f"{k}={v:g}" for k, v in sorted(self._total.items()))
        return f"<Counter {tallies}>"
