"""Indexed bucket-queue event calendar for the simulation kernel.

The kernel's previous calendar was a binary heap of ``(time, priority,
seq, event)`` tuples. That is O(log n) per operation and — more
importantly for this workload — pays tuple allocation plus the full
comparison cost for every event even though simulated clusters schedule
in *bursts*: a ring iteration triggers dozens of sends, charges and flow
joins at the exact same float timestamp (measured on the LR split sweep:
~11 events per distinct timestamp on average, with 88% of events landing
on timestamps shared with at least one other event).

:class:`BucketCalendar` exploits that clustering. Events are indexed by
their **exact** float timestamp into per-instant buckets; only *distinct*
timestamps go through a heap. Within a bucket, events live in FIFO lists
with read cursors, so both enqueue and dequeue of a same-instant event
are O(1) appends/reads — no comparisons, no per-event tuples.

Buckets escalate through three representations, sized to the measured
distribution (64% of buckets hold exactly one event; 97% of events are
NORMAL priority):

* ``(priority, item)`` tuple — a lone event; one allocation, no lists.
* ``[cursor, e0, e1, ...]`` flat list — two or more events, all NORMAL
  (the common burst). Enqueue is one ``append``; dequeue reads at
  ``cursor`` and bumps it. Items start at index 1, so ``cursor`` begins
  at 1 and the bucket is drained when it reaches ``len``.
* ``[items0, c0, items1, c1, items2, c2, unread]`` full bucket — one
  (FIFO list, cursor) pair per priority band (URGENT/NORMAL/LAZY), used
  as soon as any non-NORMAL event shares the instant. Band *p* lives at
  index ``2p``.

The three forms are discriminated without wrappers: a tuple is a
singleton; a list whose first element is an ``int`` is flat-NORMAL
(events are never ``int``); otherwise the first element is the URGENT
band list of a full bucket. FIFO order survives every escalation because
unread events are carried over in arrival order before the newcomer is
appended.

Ordering contract (the bit-identity load-bearing part): pops yield
exactly the order the old heap produced for ``(time, priority, seq)``
keys — time ascending, then priority ascending, then insertion (FIFO)
order. Equal *times* must be bit-equal floats for events to share a
bucket, which is precisely the old tuple-comparison semantics: floats
compare equal iff they are the same key.

Buckets are popped only at the minimum timestamp, so a bucket's heap
entry is dropped the moment the bucket drains — the heap never
accumulates stale entries and ``peek`` is a direct read of the root.
A bucket may keep growing while it is being drained (zero-delay
schedules land at the current minimum); the read cursors make that safe,
and a re-push after a drain simply re-registers the timestamp.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Tuple

__all__ = ["BucketCalendar"]


class BucketCalendar:
    """An exact-timestamp indexed calendar queue.

    Supports the three kernel priorities (0=URGENT, 1=NORMAL, 2=LAZY).
    ``push``/``pop`` preserve the binary heap's ``(time, priority, seq)``
    total order bit-for-bit, including FIFO processing of ties.
    """

    __slots__ = ("_buckets", "_times", "_len")

    def __init__(self) -> None:
        #: time -> singleton / flat-NORMAL / full bucket (see module doc)
        self._buckets: dict = {}
        #: heap of distinct timestamps with at least one unread event
        self._times: List[float] = []
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    # ------------------------------------------------------------ enqueue
    def push(self, when: float, priority: int, item: Any) -> None:
        """Schedule ``item`` at ``when`` in the given priority band."""
        buckets = self._buckets
        bucket = buckets.get(when)
        self._len += 1
        if bucket is None:
            buckets[when] = (priority, item)
            heapq.heappush(self._times, when)
            return
        if type(bucket) is list:
            if type(bucket[0]) is int:  # flat NORMAL-only
                if priority == 1:
                    bucket.append(item)
                    return
                # escalate: carry unread NORMAL items over in FIFO order
                carried = bucket[bucket[0]:]
                full = [[], 0, carried, 0, [], 0, len(carried) + 1]
                full[2 * priority].append(item)
                buckets[when] = full
                return
            bucket[2 * priority].append(item)
            bucket[6] += 1
            return
        # singleton tuple
        prio0, item0 = bucket
        if prio0 == 1 and priority == 1:
            buckets[when] = [1, item0, item]
            return
        full = [[], 0, [], 0, [], 0, 2]
        full[2 * prio0].append(item0)
        full[2 * priority].append(item)
        buckets[when] = full

    # ------------------------------------------------------------ dequeue
    def peek(self) -> float:
        """Earliest scheduled timestamp (raises IndexError when empty)."""
        return self._times[0]

    def pop(self) -> Tuple[float, Any]:
        """Remove and return ``(time, item)`` for the next event.

        Order: time ascending; within one timestamp, URGENT before NORMAL
        before LAZY; within one band, FIFO.
        """
        times = self._times
        when = times[0]
        buckets = self._buckets
        bucket = buckets[when]
        self._len -= 1
        if type(bucket) is list:
            cursor = bucket[0]
            if type(cursor) is int:  # flat NORMAL-only
                item = bucket[cursor]
                bucket[cursor] = None  # drop the reference promptly
                cursor += 1
                if cursor == len(bucket):
                    del buckets[when]
                    heapq.heappop(times)
                else:
                    bucket[0] = cursor
                return when, item
            for band in (0, 2, 4):
                items = bucket[band]
                cursor = bucket[band + 1]
                if cursor < len(items):
                    item = items[cursor]
                    items[cursor] = None
                    bucket[band + 1] = cursor + 1
                    bucket[6] -= 1
                    if not bucket[6]:
                        del buckets[when]
                        heapq.heappop(times)
                    return when, item
            raise IndexError("pop from an empty bucket")  # pragma: no cover
        # singleton tuple
        del buckets[when]
        heapq.heappop(times)
        return when, bucket[1]
