"""The discrete-event simulation environment.

:class:`Environment` owns the virtual clock and the event queue. The queue is
an indexed bucket calendar (:class:`~repro.sim.calendar.BucketCalendar`):
events are bucketed by exact timestamp with O(1) enqueue/dequeue for the
same-instant bursts cluster simulations produce, and only distinct timestamps
go through a heap. Pops follow ``(time, priority, insertion order)`` exactly
as the previous ``(time, priority, sequence)`` binary heap did, so every
simulation in this repository stays bit-for-bit deterministic for a fixed
seed — traces are byte-identical to the heap implementation.

Typical usage::

    env = Environment()

    def pinger():
        yield env.timeout(1.0)
        return "pong"

    proc = env.process(pinger())
    env.run()
    assert env.now == 1.0 and proc.value == "pong"
"""

from __future__ import annotations

import gc
from typing import Any, Generator, Optional

from .calendar import BucketCalendar
from .events import Event, Process, Timeout

__all__ = ["Environment", "EmptySchedule", "NORMAL", "URGENT", "LAZY"]

#: Priority for ordinary events.
NORMAL = 1
#: Priority for "urgent" kernel bookkeeping events (fire before normal ones
#: scheduled at the same instant).
URGENT = 0
#: Priority for end-of-instant bookkeeping (fires after every normal event
#: scheduled at the same instant — e.g. batched flow reallocation).
LAZY = 2


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value for the virtual clock (seconds).

    Notes
    -----
    All times are ``float`` seconds. Sub-microsecond deltas are routine
    (network latencies); accumulating them as floats is fine for the run
    lengths in this repository (hours of virtual time at most).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue = BucketCalendar()
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: cooperative-driver hook (see :mod:`repro.service.reactor`):
        #: when attached, ``run(until=event)`` calls issued from a
        #: registered worker thread are delegated to the cooperator, which
        #: parks the calling thread and lets the owning reactor pump the
        #: event loop instead. ``None`` (the default) leaves the blocking
        #: driver path untouched.
        self._cooperator: Optional[Any] = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing (None outside process steps)."""
        return self._active_process

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the host-perf throughput metric)."""
        return self._seq

    # -- event construction --------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator, name: str = "",
                critical: bool = False) -> Process:
        """Start a new :class:`Process` running ``generator``.

        ``critical=True`` marks infrastructure that nobody joins: its
        failures crash the simulation instead of being swallowed.
        """
        return Process(self, generator, name=name, critical=critical)

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Insert a triggered event into the queue ``delay`` from now."""
        self._seq += 1
        self._queue.push(self._now + delay, priority, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        if not self._queue:
            return float("inf")
        return self._queue.peek()

    def step(self) -> None:
        """Process the single next event (advancing the clock to it)."""
        if not self._queue:
            raise EmptySchedule()
        when, event = self._queue.pop()
        if when < self._now:  # pragma: no cover - calendar invariant guard
            raise AssertionError("event scheduled in the past")
        self._now = when
        event._run_callbacks()

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be

        * ``None`` — run until the event queue drains,
        * a number — run until the clock reaches that time,
        * an :class:`Event` — run until that event is *processed*, returning
          its value (re-raising its exception if it failed).

        The cyclic garbage collector is suspended for the duration of the
        dispatch loop: the kernel allocates events and processes (which form
        reference cycles through their callback lists) at a rate that keeps
        the collector permanently busy, and one collection at the end is
        measurably cheaper than thousands of incremental passes. Purely a
        host-speed optimization — no simulated quantity can observe it.
        """
        cooperator = self._cooperator
        if cooperator is not None and cooperator.owns_current_thread():
            # A service worker thread may not pump the event loop itself
            # (the reactor owns it); park until ``until`` fires instead.
            return cooperator.await_event(until)
        gc_enabled = gc.isenabled()
        if gc_enabled:
            gc.disable()
        try:
            return self._run(until)
        finally:
            if gc_enabled:
                gc.enable()

    def _run(self, until: Optional[Any]) -> Any:
        queue = self._queue
        pop = queue.pop
        if until is None:
            # ``queue._len`` instead of ``while queue`` skips a Python
            # __bool__ call per event on the hottest loop in the repo.
            while queue._len:
                when, event = pop()
                self._now = when
                event._run_callbacks()
            return None

        if isinstance(until, Event):
            if until.processed:
                # Already ran its callbacks in a previous run() — return its
                # outcome immediately instead of draining the queue.
                if until.exception is not None:
                    raise until.exception
                return until.value

            done = False

            def _mark(_event: Event) -> None:
                nonlocal done
                done = True

            until.add_callback(_mark)
            try:
                while not done:
                    if not queue._len:
                        raise EmptySchedule(
                            f"simulation ran dry before {until!r} fired"
                        )
                    when, event = pop()
                    self._now = when
                    event._run_callbacks()
            finally:
                # Detach on any exit so an abandoned run() does not leave a
                # stale closure on the event's callback list.
                if not done and until.callbacks is not None:
                    try:
                        until.callbacks.remove(_mark)
                    except ValueError:  # pragma: no cover - defensive
                        pass
            if until.exception is not None:
                raise until.exception
            return until.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(
                f"cannot run until {horizon:g}: clock is already at {self._now:g}"
            )
        while queue._len and queue.peek() <= horizon:
            when, event = pop()
            self._now = when
            event._run_callbacks()
        self._now = horizon
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now:g} pending={len(self._queue)}>"
