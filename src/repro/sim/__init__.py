"""Deterministic discrete-event simulation kernel.

This package is the foundation of the reproduction: the simulated cluster,
network, Spark-like engine, and every benchmark figure run on top of this
kernel. It is a compact generator-coroutine design in the SimPy tradition,
written from scratch so the repository has no dependency beyond NumPy/SciPy.

Public surface::

    from repro.sim import Environment, Resource, CapacityPool, Store
    from repro.sim import all_of, any_of, Interrupt
"""

from .core import EmptySchedule, Environment
from .events import (
    Condition,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    all_of,
    any_of,
)
from .monitor import Counter, Stopwatch
from .resources import CapacityPool, Resource, Store

__all__ = [
    "Environment",
    "EmptySchedule",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "Interrupt",
    "SimulationError",
    "all_of",
    "any_of",
    "Resource",
    "CapacityPool",
    "Store",
    "Stopwatch",
    "Counter",
]
