"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic generator-coroutine design (as popularised by
SimPy): simulated activities are Python generators that ``yield`` events; the
:class:`~repro.sim.core.Environment` resumes them when those events fire.

Everything in the simulated cluster — task execution, message transfer,
NIC occupancy — is ultimately expressed in terms of the primitives in this
module:

* :class:`Event` — a one-shot occurrence with a value (or an exception),
* :class:`Timeout` — an event that fires after a fixed virtual delay,
* :class:`Process` — a running generator, itself usable as an event that
  fires when the generator returns,
* :class:`Condition` / :func:`all_of` / :func:`any_of` — event combinators.

Determinism is a hard requirement for reproducing the paper's figures, so
events scheduled for the same virtual time fire in FIFO order of scheduling
(ties are broken by a monotonically increasing sequence number, never by
object identity).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Environment

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "all_of",
    "any_of",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level protocol violations (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries an arbitrary user value describing why
    the process was interrupted (e.g. a fault-injection record).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Events move through three states:
PENDING = 0  #: created, not yet scheduled to fire
TRIGGERED = 1  #: scheduled in the event queue, value decided
PROCESSED = 2  #: callbacks have run


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    decides its value and schedules its callbacks to run at the current
    simulation time. Processes wait on an event by ``yield``-ing it.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_state", "name")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.name = name
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = PENDING

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event's outcome has been decided."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value (raises if the event failed or is pending)."""
        if not self.triggered:
            raise SimulationError(f"value of {self!r} is not yet available")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure cause, or None (pending or succeeded)."""
        return self._exception

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Decide the event as successful with ``value`` and schedule it."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self._state = TRIGGERED
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Decide the event as failed with ``exception`` and schedule it."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = TRIGGERED
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another (triggered) event onto this one.

        Used by condition events to forward child outcomes.
        """
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(event._value)

    # -- kernel hooks --------------------------------------------------------
    def _run_callbacks(self) -> None:
        """Invoke callbacks; called exactly once by the environment."""
        callbacks, self.callbacks = self.callbacks, None
        self._state = PROCESSED
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs immediately-ish if already processed."""
        if self.callbacks is None:
            # Already processed: schedule a shadow event so the callback
            # still runs through the queue (preserving FIFO determinism).
            shadow = Event(self.env, name=f"shadow:{self.name}")
            shadow.add_callback(lambda _s: callback(self))
            if self._exception is not None:
                shadow._exception = self._exception
                shadow._state = TRIGGERED
                self.env.schedule(shadow)
            else:
                shadow.succeed(self._value)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state[self._state]}>"


class Timeout(Event):
    """An event that fires ``delay`` units of virtual time in the future.

    Timeouts are by far the most-allocated event type (every task charge,
    transfer leg and merge cost is one), so ``__init__`` is flattened: no
    ``super()`` chain and no eager name formatting — the display name is
    derived from ``delay`` on demand in :meth:`__repr__`.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self.name = name
        self.callbacks = []
        self._value = value
        self._exception = None
        self._state = TRIGGERED
        self.delay = delay
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        if self.name:
            return super().__repr__()
        state = {PENDING: "pending", TRIGGERED: "triggered",
                 PROCESSED: "processed"}
        return f"<Timeout 'timeout({self.delay:g})' {state[self._state]}>"


class _Boot:
    """A zero-allocation-overhead bootstrap entry for a new :class:`Process`.

    The kernel only requires queue entries to expose ``_run_callbacks``; a
    full boot :class:`Event` (callbacks list, closure, shadow-event
    machinery) is overkill for the one-shot "resume the generator now"
    trampoline, and processes are allocated on every task, transfer and
    lock wait. Consumes exactly one schedule() sequence number — the same
    as the boot event it replaces — so FIFO ordering is untouched.
    """

    __slots__ = ("process",)

    def __init__(self, process: "Process"):
        self.process = process

    def _run_callbacks(self) -> None:
        proc = self.process
        if proc._state == PENDING:
            proc._advance(None)


class Process(Event):
    """A running generator coroutine.

    A process is also an event: it triggers when its generator returns
    (success, with the ``return`` value) or raises (failure). This is what
    makes ``yield some_process`` a join operation.
    """

    __slots__ = ("generator", "_target", "_interrupts", "critical")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str = "", critical: bool = False):
        if not hasattr(generator, "throw"):
            raise TypeError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(env, name=name or getattr(generator, "__name__", "proc"))
        self.generator = generator
        #: critical processes crash the simulation when they fail — for
        #: infrastructure nobody joins (timers, daemons), whose failures
        #: would otherwise be silently swallowed
        self.critical = critical
        self._target: Optional[Event] = None  # event we are waiting on
        self._interrupts: list = []
        # Bootstrap: resume the generator at the current time (lightweight
        # trampoline — see _Boot).
        env.schedule(_Boot(self))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        twice before it handles the first interrupt queues the causes.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        self._interrupts.append(Interrupt(cause))
        if len(self._interrupts) == 1:
            # Detach from the current target (its eventual firing must not
            # resume us with a stale value).
            poke = Event(self.env, name=f"interrupt:{self.name}")
            poke.add_callback(self._deliver_interrupt)
            poke.succeed(None)

    def _deliver_interrupt(self, _event: Event) -> None:
        if not self.is_alive or not self._interrupts:
            return
        target, self._target = self._target, None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        interrupt = self._interrupts.pop(0)
        self._advance(None, interrupt)

    def _resume(self, event: Event) -> None:
        if self._state != PENDING:
            return
        self._target = None
        self._advance(event._value, event._exception)

    def _advance(self, value: Any,
                 exc: Optional[BaseException] = None) -> None:
        """Resume the generator with ``value`` (or throw ``exc`` into it).

        This is the kernel's innermost loop — one call per process step —
        so the send/throw dispatch is inlined rather than packaged into a
        per-step closure.
        """
        env = self.env
        env._active_process = self
        try:
            if exc is None:
                target = self.generator.send(value)
            else:
                target = self.generator.throw(exc)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate as failure
            env._active_process = None
            if self.critical:
                raise  # crash the simulation loudly (infrastructure bug)
            self.fail(error)
            return
        env._active_process = None
        if not isinstance(target, Event):
            # Crash the process with a clear error: generators may only
            # yield kernel events.
            error = SimulationError(
                f"process {self.name!r} yielded a non-event: {target!r}"
            )
            self._step_fail(error)
            return
        if target.env is not env:
            self._step_fail(SimulationError(
                f"process {self.name!r} yielded an event from another environment"
            ))
            return
        callbacks = target.callbacks
        if callbacks is None:
            # Already processed — resume via a shadow event to stay FIFO.
            target.add_callback(self._resume)
        else:
            callbacks.append(self._resume)
        self._target = target

    def _step_fail(self, error: BaseException) -> None:
        try:
            self.generator.throw(error)
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as exc:  # noqa: BLE001
            self.fail(exc)


class Condition(Event):
    """An event that fires when ``evaluate(children, n_done)`` is true.

    Used through the :func:`all_of` / :func:`any_of` helpers. The condition
    value is a dict mapping each *triggered* child event to its value, in
    child order (insertion-ordered).
    """

    __slots__ = ("_children", "_evaluate", "_fired")

    def __init__(self, env: "Environment",
                 evaluate: Callable[[list, int], bool],
                 children: Iterable[Event],
                 name: str = ""):
        super().__init__(env, name=name or "condition")
        self._children = list(children)
        self._evaluate = evaluate
        self._fired: set = set()
        for child in self._children:
            if child.env is not env:
                raise SimulationError("condition spans multiple environments")
        if not self._children and evaluate(self._children, 0):
            self.succeed({})
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child._exception is not None:
            self.fail(child._exception)
            return
        self._fired.add(id(child))
        if self._evaluate(self._children, len(self._fired)):
            self.succeed({
                c: c._value for c in self._children if id(c) in self._fired
            })


def all_of(env: "Environment", events: Iterable[Event]) -> Condition:
    """An event that fires once *all* of ``events`` have fired."""
    return Condition(env, lambda children, count: count == len(children),
                     events, name="all_of")


def any_of(env: "Environment", events: Iterable[Event]) -> Condition:
    """An event that fires as soon as *any* of ``events`` has fired."""
    return Condition(env, lambda children, count: count >= 1,
                     events, name="any_of")
