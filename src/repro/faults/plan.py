"""Declarative fault plans: what breaks, when, and how hard.

A :class:`FaultPlan` is a seed-stamped, immutable description of every
fault one run will suffer — executor crashes pinned to virtual times,
stage boundaries or ring hops; per-link message drops and delays;
straggling executors; driver-NIC degradation windows. Plans are pure
data: the :class:`~repro.faults.controller.FaultController` interprets
them against a live :class:`~repro.rdd.context.SparkerContext`, so the
same plan object replayed against the same workload and seed produces a
byte-identical event log.

:class:`RecoveryPolicy` is the matching knob set for the survival side:
how long a ring rank waits before declaring its upstream neighbour dead,
how many times the ring is rebuilt over the survivors, and whether the
aggregation falls back to ``treeAggregate`` when the ring budget is
exhausted.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Tuple, Union

__all__ = [
    "AtTime",
    "AtStageBoundary",
    "AtRingHop",
    "ExecutorCrash",
    "MessageDrop",
    "MessageDelay",
    "Straggler",
    "DriverNicDegradation",
    "Fault",
    "Trigger",
    "FaultPlan",
    "RecoveryPolicy",
    "random_plan",
]


# ---------------------------------------------------------------- triggers
@dataclass(frozen=True)
class AtTime:
    """Fire at an absolute virtual time (seconds)."""

    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"trigger time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class AtStageBoundary:
    """Fire when the ``occurrence``-th matching stage edge is observed.

    ``edge`` is ``"submitted"`` or ``"completed"``; ``stage_kind`` filters
    on the stage flavour (``"reduced_result"`` hits the IMM stage of a
    split aggregation — crashing on its ``completed`` edge kills an
    executor exactly between partial computation and the ring).
    """

    stage_kind: str = "reduced_result"
    edge: str = "completed"
    occurrence: int = 0

    def __post_init__(self) -> None:
        if self.edge not in ("submitted", "completed"):
            raise ValueError(f"edge must be submitted|completed, "
                             f"got {self.edge!r}")
        if self.occurrence < 0:
            raise ValueError(f"occurrence must be >= 0, got {self.occurrence}")


@dataclass(frozen=True)
class AtRingHop:
    """Fire when the ``occurrence``-th :class:`~repro.obs.RingHop` with
    hop index ``hop`` (and, optionally, channel) completes — the mid-ring
    crash point."""

    hop: int
    channel: Optional[Any] = None
    occurrence: int = 0

    def __post_init__(self) -> None:
        if self.hop < 0:
            raise ValueError(f"hop must be >= 0, got {self.hop}")
        if self.occurrence < 0:
            raise ValueError(f"occurrence must be >= 0, got {self.occurrence}")


Trigger = Union[AtTime, AtStageBoundary, AtRingHop]


# ------------------------------------------------------------------ faults
@dataclass(frozen=True)
class ExecutorCrash:
    """Kill one executor (state, caches and IMM objects are lost)."""

    executor_id: int
    trigger: Trigger = field(default_factory=lambda: AtTime(0.0))


@dataclass(frozen=True)
class MessageDrop:
    """Silently lose fabric messages on a link.

    The bytes still cross the wire (the sender's completion fires at the
    normal instant) but the message never reaches the destination
    mailbox — the receiver can only notice through its recv timeout.
    ``src``/``dst`` are ring ranks (-1 matches any); ``channel`` filters
    on the collective channel; the first ``skip`` matching messages pass
    unharmed, then ``count`` are dropped.
    """

    src: int = -1
    dst: int = -1
    channel: Optional[Any] = None
    count: int = 1
    skip: int = 0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0, got {self.skip}")


@dataclass(frozen=True)
class MessageDelay:
    """Postpone matching messages' delivery by ``delay`` seconds."""

    delay: float = 0.1
    src: int = -1
    dst: int = -1
    channel: Optional[Any] = None
    count: int = 1
    skip: int = 0

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ValueError(f"delay must be positive, got {self.delay}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0, got {self.skip}")


@dataclass(frozen=True)
class Straggler:
    """Multiply one executor's compute time by ``factor`` for a window.

    ``duration=math.inf`` leaves the executor slow forever.
    """

    executor_id: int
    factor: float = 4.0
    start: float = 0.0
    duration: float = math.inf

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class DriverNicDegradation:
    """Scale the driver node's NIC capacity (both directions) by ``factor``
    for a window — the congested-driver scenario the paper's gather step
    is sensitive to."""

    factor: float = 0.25
    start: float = 0.0
    duration: float = math.inf

    def __post_init__(self) -> None:
        if not 0 < self.factor:
            raise ValueError(f"factor must be positive, got {self.factor}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


Fault = Union[ExecutorCrash, MessageDrop, MessageDelay, Straggler,
              DriverNicDegradation]

_FAULT_TYPES = (ExecutorCrash, MessageDrop, MessageDelay, Straggler,
                DriverNicDegradation)


# ------------------------------------------------------------------- plans
@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seed-stamped set of faults for one run."""

    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, _FAULT_TYPES):
                raise TypeError(f"not a fault: {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the engine survives what a plan injects.

    ``recv_timeout`` is each ring hop's failure-detection deadline (virtual
    seconds of upstream silence before the rank raises ``ExecutorLost``);
    ``max_ring_attempts`` bounds ring rebuilds before the aggregation
    falls back to ``treeAggregate`` (``tree_fallback``/``tree_depth``).
    """

    recv_timeout: float = 0.5
    max_ring_attempts: int = 3
    tree_fallback: bool = True
    tree_depth: int = 2

    def __post_init__(self) -> None:
        if self.recv_timeout <= 0:
            raise ValueError(
                f"recv_timeout must be positive, got {self.recv_timeout}")
        if self.max_ring_attempts < 1:
            raise ValueError(f"max_ring_attempts must be >= 1, "
                             f"got {self.max_ring_attempts}")
        if self.tree_depth < 1:
            raise ValueError(
                f"tree_depth must be >= 1, got {self.tree_depth}")


def random_plan(seed: int, executor_ids: Sequence[int], horizon: float,
                n_crashes: int = 1, n_drops: int = 0, n_delays: int = 0,
                max_delay: float = 0.25) -> FaultPlan:
    """A seeded random plan: same arguments -> the identical plan object.

    Crash times are uniform over ``[0, horizon)``; link faults skip a
    random number of early messages so they land at varied ring phases.
    """
    if not executor_ids:
        raise ValueError("need at least one executor id")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    rng = random.Random(seed)
    faults: list = []
    for _ in range(n_crashes):
        faults.append(ExecutorCrash(
            executor_id=rng.choice(list(executor_ids)),
            trigger=AtTime(rng.uniform(0.0, horizon))))
    for _ in range(n_drops):
        faults.append(MessageDrop(skip=rng.randrange(8)))
    for _ in range(n_delays):
        faults.append(MessageDelay(
            delay=rng.uniform(max_delay / 8, max_delay),
            skip=rng.randrange(8)))
    return FaultPlan(tuple(faults), seed=seed)
