"""Deterministic, seeded fault injection for the simulated engine.

Declare what breaks with a :class:`FaultPlan` (executor crashes at
virtual times, stage boundaries or ring hops; message drops and delays;
stragglers; driver-NIC degradation), arm a :class:`FaultController`
against a context, and run the workload — split aggregation detects the
damage (recv timeouts, death listeners, epoch fencing) and recovers per
its :class:`RecoveryPolicy` (lineage recompute of lost partials, ring
rebuild over the survivors, bounded attempts, ``treeAggregate``
fallback). Same plan + same seed replays to a byte-identical event log.
"""

from .controller import FaultController
from .health import ExecutorHealthRegistry, HealthPolicy
from .plan import (
    AtRingHop,
    AtStageBoundary,
    AtTime,
    DriverNicDegradation,
    ExecutorCrash,
    Fault,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    RecoveryPolicy,
    Straggler,
    Trigger,
    random_plan,
)

__all__ = [
    "FaultController",
    "FaultPlan",
    "RecoveryPolicy",
    "HealthPolicy",
    "ExecutorHealthRegistry",
    "AtTime",
    "AtStageBoundary",
    "AtRingHop",
    "ExecutorCrash",
    "MessageDrop",
    "MessageDelay",
    "Straggler",
    "DriverNicDegradation",
    "Fault",
    "Trigger",
    "random_plan",
]
