"""Executor health: failure/straggle scoring, quarantine, backoff.

Spark pairs its schedulers with node blacklisting (``spark.blacklist.*``,
later "excludeOnFailure"): executors that keep failing or straggling stop
receiving tasks for a while instead of poisoning every wave. This module
is that mechanism at the simulated engine's grain:

* :class:`HealthPolicy` — the knob set: strike weights for failures and
  straggles, the score threshold that quarantines an executor, the
  exponentially-growing quarantine window, and the per-retry backoff
  delay the scheduler applies to repeatedly-failing tasks.
* :class:`ExecutorHealthRegistry` — driver-side bookkeeping owned by
  every :class:`~repro.rdd.context.SparkerContext` (``sc.health``).
  The scheduler reports failures/straggles/successes; placement asks
  :meth:`is_available` before handing a task (or a speculative copy) to
  an executor; the collective cost model asks :meth:`compute_penalty`
  so ``collective="auto"`` prices degraded nodes.

Quarantine follows Spark's blacklist-with-timeout shape plus probation:
crossing ``quarantine_threshold`` removes the executor from placement
for ``base_quarantine * backoff_factor**(k-1)`` virtual seconds (k-th
quarantine, capped at ``max_quarantine``); when the window expires the
executor re-enters placement *on probation* — the first success clears
its record, the next strike re-quarantines it with the longer window.

Zero-perturbation contract: the registry is pure driver-side
bookkeeping. Recording and scoring consume no virtual time and schedule
no simulation events; with the default ``retry_backoff=0.0`` an armed
registry leaves every fault-free run's timing and results bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Set

from ..obs import ExecutorHealth

if TYPE_CHECKING:  # pragma: no cover
    from ..rdd.context import SparkerContext

__all__ = ["HealthPolicy", "ExecutorHealthRegistry"]


@dataclass(frozen=True)
class HealthPolicy:
    """How executor strikes score, quarantine and decay.

    ``failure_weight`` / ``straggle_weight`` are the score added per
    failed task and per detected straggle; ``quarantine_threshold`` is
    the score at which the executor leaves placement. The k-th
    quarantine lasts ``base_quarantine * backoff_factor**(k-1)`` virtual
    seconds (at most ``max_quarantine``). ``success_decay`` multiplies
    the score on every successful task (probation successes clear it
    entirely). ``retry_backoff`` is the scheduler's base delay before
    re-attempting a failed task (``retry_backoff * backoff_factor**
    (failures-1)``); the 0.0 default schedules nothing and preserves the
    seed-identical retry timing.
    """

    failure_weight: float = 1.0
    straggle_weight: float = 0.5
    quarantine_threshold: float = 2.0
    base_quarantine: float = 5.0
    backoff_factor: float = 2.0
    max_quarantine: float = 120.0
    success_decay: float = 0.5
    retry_backoff: float = 0.0

    def __post_init__(self) -> None:
        if self.failure_weight < 0 or self.straggle_weight < 0:
            raise ValueError("strike weights must be >= 0")
        if self.quarantine_threshold <= 0:
            raise ValueError(
                f"quarantine_threshold must be positive, "
                f"got {self.quarantine_threshold}")
        if self.base_quarantine <= 0:
            raise ValueError(
                f"base_quarantine must be positive, "
                f"got {self.base_quarantine}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.max_quarantine < self.base_quarantine:
            raise ValueError("max_quarantine must be >= base_quarantine")
        if not 0.0 <= self.success_decay <= 1.0:
            raise ValueError(
                f"success_decay must be in [0, 1], got {self.success_decay}")
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}")


class ExecutorHealthRegistry:
    """Per-executor failure/straggle scores with quarantine and probation.

    Owned by the context as ``sc.health``; always constructed, always
    cheap. All state transitions are driven by deterministic virtual
    time, so replays under the same plan and seed reproduce the same
    quarantine decisions.
    """

    def __init__(self, sc: "SparkerContext",
                 policy: Optional[HealthPolicy] = None):
        self.sc = sc
        self.policy = policy or HealthPolicy()
        self._score: Dict[int, float] = {}
        self._strikes: Dict[int, int] = {}
        self._quarantined_until: Dict[int, float] = {}
        self._quarantine_count: Dict[int, int] = {}
        self._probation: Set[int] = set()

    # -------------------------------------------------------------- queries
    def score(self, executor_id: int) -> float:
        """Current weighted strike score (0.0 = healthy)."""
        return self._score.get(executor_id, 0.0)

    def strikes(self, executor_id: int) -> int:
        """Total failure + straggle strikes recorded."""
        return self._strikes.get(executor_id, 0)

    def is_quarantined(self, executor_id: int) -> bool:
        """Whether the executor is currently excluded from placement.

        An expired quarantine window transitions the executor to
        probation as a side effect (one ``probation`` health event).
        """
        until = self._quarantined_until.get(executor_id)
        if until is None:
            return False
        if self.sc.env.now < until:
            return True
        del self._quarantined_until[executor_id]
        self._probation.add(executor_id)
        self._emit(executor_id, "probation")
        return False

    def on_probation(self, executor_id: int) -> bool:
        # Resolve any expired quarantine first.
        return (not self.is_quarantined(executor_id)
                and executor_id in self._probation)

    def is_available(self, executor_id: int) -> bool:
        """Alive and not quarantined — eligible for placement."""
        try:
            executor = self.sc.executor_by_id(executor_id)
        except KeyError:
            return False
        return executor.alive and not self.is_quarantined(executor_id)

    def retry_delay(self, failures: int) -> float:
        """Backoff before re-attempting a task that failed ``failures``
        times; 0.0 under the default policy (no events scheduled)."""
        if self.policy.retry_backoff <= 0 or failures <= 0:
            return 0.0
        return (self.policy.retry_backoff
                * self.policy.backoff_factor ** (failures - 1))

    def compute_penalty(self, executor_id: int) -> float:
        """Cost-model multiplier for this executor's effective compute.

        Combines the live compute scale a straggler window set on the
        executor with the health score, so ``collective="auto"`` prices
        a degraded node's merge bandwidth realistically. 1.0 when
        healthy — auto-tuned predictions are unchanged on clean runs.
        """
        try:
            executor = self.sc.executor_by_id(executor_id)
        except KeyError:
            return 1.0
        scale = max(float(getattr(executor, "compute_scale", 1.0)), 1.0)
        return scale * (1.0 + self.score(executor_id))

    # ------------------------------------------------------------ recording
    def record_failure(self, executor_id: int) -> None:
        """A task attempt on this executor failed."""
        self._strike(executor_id, self.policy.failure_weight, "failure")

    def record_straggle(self, executor_id: int) -> None:
        """This executor ran a task past the speculation threshold."""
        self._strike(executor_id, self.policy.straggle_weight, "straggle")

    def record_success(self, executor_id: int) -> None:
        """A task attempt completed; decays the score, clears probation."""
        if executor_id in self._probation:
            self._probation.discard(executor_id)
            self._score[executor_id] = 0.0
            self._strikes[executor_id] = 0
            self._emit(executor_id, "cleared")
            return
        score = self._score.get(executor_id, 0.0)
        if score > 0.0:
            self._score[executor_id] = score * self.policy.success_decay

    def _strike(self, executor_id: int, weight: float, event: str) -> None:
        self._score[executor_id] = self.score(executor_id) + weight
        self._strikes[executor_id] = self.strikes(executor_id) + 1
        self._probation.discard(executor_id)
        self._emit(executor_id, event)
        if (self._score[executor_id] >= self.policy.quarantine_threshold
                and executor_id not in self._quarantined_until):
            count = self._quarantine_count.get(executor_id, 0) + 1
            self._quarantine_count[executor_id] = count
            window = min(
                self.policy.base_quarantine
                * self.policy.backoff_factor ** (count - 1),
                self.policy.max_quarantine)
            self._quarantined_until[executor_id] = self.sc.env.now + window
            self._emit(executor_id, "quarantined",
                       until=self._quarantined_until[executor_id])

    # ------------------------------------------------------------- plumbing
    def _emit(self, executor_id: int, event: str, until: float = 0.0) -> None:
        bus = self.sc.event_bus
        if bus is not None and bus.active:
            bus.emit(ExecutorHealth(
                time=self.sc.env.now, executor_id=executor_id, status=event,
                score=self.score(executor_id),
                strikes=self.strikes(executor_id), until=until))

    def __repr__(self) -> str:
        quarantined = sorted(
            eid for eid in list(self._quarantined_until)
            if self.is_quarantined(eid))
        return (f"<ExecutorHealthRegistry scores={len(self._score)} "
                f"quarantined={quarantined}>")
