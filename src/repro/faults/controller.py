"""The fault controller: executes a plan against a live context.

Arming a :class:`FaultController` attaches it to the context
(``sc.faults``), spawns one simulation process per time-windowed fault
(crash-at-time, straggler, NIC degradation) and subscribes to the
observability bus for event-triggered crashes (stage boundaries, ring
hops). Link faults are not processes at all: the comm fabric consults
:meth:`FaultController.message_fault` per message, so an unarmed run pays
nothing and an armed run perturbs only the messages the plan names.

Every injection appends a :class:`~repro.obs.FaultInjected` to
``controller.injected`` and mirrors it onto the event bus, so fault
timelines land in the same JSONL log / Chrome trace as everything else.
Determinism: the controller schedules through the same seeded kernel as
the workload and keeps no wall-clock state, so one plan + one seed
replays to a byte-identical event stream.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from ..obs import FaultInjected, channel_str
from .plan import (
    AtRingHop,
    AtStageBoundary,
    AtTime,
    DriverNicDegradation,
    ExecutorCrash,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    RecoveryPolicy,
    Straggler,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..rdd.context import SparkerContext

__all__ = ["FaultController"]


class _Watcher:
    """One event-triggered crash counting down to its occurrence."""

    __slots__ = ("fault", "trigger", "remaining", "fired")

    def __init__(self, fault: ExecutorCrash, trigger: Any):
        self.fault = fault
        self.trigger = trigger
        self.remaining = trigger.occurrence
        self.fired = False


class _LinkState:
    """Mutable skip/count counters for one link fault."""

    __slots__ = ("fault", "skip", "remaining", "channel_key")

    def __init__(self, fault: Any):
        self.fault = fault
        self.skip = fault.skip
        self.remaining = fault.count
        self.channel_key = (None if fault.channel is None
                            else channel_str(fault.channel))


class FaultController:
    """Interprets a :class:`~repro.faults.plan.FaultPlan` against ``sc``.

    Usage::

        controller = FaultController(sc, plan, recovery).arm()
        result = split_aggregate(...)   # survives the plan
        controller.injected             # what actually fired
    """

    def __init__(self, sc: "SparkerContext", plan: Optional[FaultPlan] = None,
                 recovery: Optional[RecoveryPolicy] = None):
        self.sc = sc
        self.plan = plan if plan is not None else FaultPlan()
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        #: every FaultInjected, in firing order
        self.injected: List[FaultInjected] = []
        #: every RecoveryAction the engine reported back, in order
        self.actions: List[Any] = []
        self._armed = False
        self._subscribed = False
        self._stage_watchers: List[_Watcher] = []
        self._hop_watchers: List[_Watcher] = []
        self._link_states: List[_LinkState] = []

    # ------------------------------------------------------------------- arm
    def arm(self) -> "FaultController":
        """Attach to the context and schedule every planned fault."""
        if self._armed:
            raise RuntimeError("controller is already armed")
        if self.sc.faults is not None:
            raise RuntimeError("another fault controller is armed")
        self._armed = True
        self.sc.faults = self
        env = self.sc.env
        for fault in self.plan.faults:
            if isinstance(fault, ExecutorCrash):
                trigger = fault.trigger
                if isinstance(trigger, AtTime):
                    env.process(self._timed_crash(fault, trigger),
                                name="fault-controller")
                elif isinstance(trigger, AtStageBoundary):
                    self._stage_watchers.append(_Watcher(fault, trigger))
                elif isinstance(trigger, AtRingHop):
                    self._hop_watchers.append(_Watcher(fault, trigger))
                else:  # pragma: no cover - plan validation guards this
                    raise TypeError(f"unknown trigger {trigger!r}")
            elif isinstance(fault, (MessageDrop, MessageDelay)):
                self._link_states.append(_LinkState(fault))
            elif isinstance(fault, Straggler):
                env.process(self._straggler_window(fault),
                            name="fault-controller")
            elif isinstance(fault, DriverNicDegradation):
                env.process(self._nic_window(fault),
                            name="fault-controller")
            else:  # pragma: no cover - FaultPlan validates
                raise TypeError(f"unknown fault {fault!r}")
        if self._stage_watchers or self._hop_watchers:
            self.sc.event_bus.subscribe(self._on_event)
            self._subscribed = True
        return self

    def disarm(self) -> None:
        """Detach from the context (pending timed faults still fire if the
        simulation runs past their instants; event triggers are dead)."""
        if self._subscribed:
            self.sc.event_bus.unsubscribe(self._on_event)
            self._subscribed = False
        if self.sc.faults is self:
            self.sc.faults = None
        self._armed = False

    # -------------------------------------------------------------- recording
    def _record(self, event: FaultInjected) -> None:
        bus = self.sc.event_bus
        if bus.active and event.span_id < 0:
            # Injections are causal roots: they get their own span so
            # recovery epochs and Chrome-trace markers can reference them.
            event = replace(event, span_id=bus.tracer.new_span())
        self.injected.append(event)
        if bus.active:
            bus.emit(event)

    # ----------------------------------------------------------- crash faults
    def _crash(self, fault: ExecutorCrash, trigger: str,
               detail: str = "") -> None:
        self._record(FaultInjected(
            time=self.sc.now, fault="executor_crash",
            target=f"executor {fault.executor_id}", trigger=trigger,
            executor_id=fault.executor_id, detail=detail))
        self.sc.executor_by_id(fault.executor_id).kill(
            f"fault injection ({trigger})")

    def _timed_crash(self, fault: ExecutorCrash, trigger: AtTime):
        env = self.sc.env
        delay = trigger.time - env.now
        if delay > 0:
            yield env.timeout(delay)
        self._crash(fault, trigger="at_time")

    def _on_event(self, event: Any) -> None:
        kind = event.kind
        if kind == "ring_hop" and self._hop_watchers:
            fired = False
            for watcher in self._hop_watchers:
                trigger = watcher.trigger
                if watcher.fired or event.hop != trigger.hop:
                    continue
                if (trigger.channel is not None
                        and event.channel != channel_str(trigger.channel)):
                    continue
                if watcher.remaining > 0:
                    watcher.remaining -= 1
                    continue
                watcher.fired = True
                fired = True
                self._crash(watcher.fault, trigger="ring_hop",
                            detail=f"channel {event.channel} hop {event.hop}")
            if fired:
                self._hop_watchers = [w for w in self._hop_watchers
                                      if not w.fired]
        elif kind in ("stage_submitted", "stage_completed") \
                and self._stage_watchers:
            edge = ("submitted" if kind == "stage_submitted"
                    else "completed")
            fired = False
            for watcher in self._stage_watchers:
                trigger = watcher.trigger
                if (watcher.fired or trigger.edge != edge
                        or trigger.stage_kind != event.stage_kind):
                    continue
                if watcher.remaining > 0:
                    watcher.remaining -= 1
                    continue
                watcher.fired = True
                fired = True
                self._crash(
                    watcher.fault, trigger="stage_boundary",
                    detail=f"{event.stage_kind} stage {event.stage_id} "
                           f"{edge}")
            if fired:
                self._stage_watchers = [w for w in self._stage_watchers
                                        if not w.fired]

    # ------------------------------------------------------------ link faults
    def message_fault(self, src: int, dst: int, channel: str,
                      hop: Optional[int],
                      nbytes: float) -> Optional[Tuple[str, float]]:
        """Fabric hook: the fate of one message, or None for normal delivery.

        First matching fault wins; a match consumes either one of its
        ``skip`` passes or one of its ``count`` injections.
        """
        if not self._link_states:
            return None
        for state in self._link_states:
            if state.remaining <= 0:
                continue
            fault = state.fault
            if fault.src >= 0 and fault.src != src:
                continue
            if fault.dst >= 0 and fault.dst != dst:
                continue
            if state.channel_key is not None \
                    and channel != state.channel_key:
                continue
            if state.skip > 0:
                state.skip -= 1
                return None
            state.remaining -= 1
            hop_note = "" if hop is None else f" hop {hop}"
            if isinstance(fault, MessageDrop):
                self._record(FaultInjected(
                    time=self.sc.now, fault="message_drop",
                    target=f"rank {src} -> rank {dst}", trigger="link",
                    src=src, dst=dst, channel=channel,
                    detail=f"{nbytes:g}B{hop_note}"))
                return ("drop", 0.0)
            self._record(FaultInjected(
                time=self.sc.now, fault="message_delay",
                target=f"rank {src} -> rank {dst}", trigger="link",
                src=src, dst=dst, channel=channel,
                detail=f"+{fault.delay:g}s {nbytes:g}B{hop_note}"))
            return ("delay", fault.delay)
        return None

    # ------------------------------------------------------- windowed faults
    def _straggler_window(self, fault: Straggler):
        env = self.sc.env
        if fault.start > env.now:
            yield env.timeout(fault.start - env.now)
        executor = self.sc.executor_by_id(fault.executor_id)
        saved = executor.compute_scale
        executor.compute_scale = fault.factor
        self._record(FaultInjected(
            time=env.now, fault="straggler",
            target=f"executor {fault.executor_id}", trigger="window",
            executor_id=fault.executor_id,
            detail=f"compute x{fault.factor:g}"))
        if math.isinf(fault.duration):
            return
        yield env.timeout(fault.duration)
        executor.compute_scale = saved
        self._record(FaultInjected(
            time=env.now, fault="straggler_end",
            target=f"executor {fault.executor_id}", trigger="window",
            executor_id=fault.executor_id))

    def _nic_window(self, fault: DriverNicDegradation):
        env = self.sc.env
        if fault.start > env.now:
            yield env.timeout(fault.start - env.now)
        driver = self.sc.cluster.driver_node
        flows = self.sc.cluster.network.flows
        saved_in = driver.nic_in.capacity
        saved_out = driver.nic_out.capacity
        flows.set_link_capacity(driver.nic_in, saved_in * fault.factor)
        flows.set_link_capacity(driver.nic_out, saved_out * fault.factor)
        self._record(FaultInjected(
            time=env.now, fault="nic_degradation",
            target=f"driver {driver.hostname}", trigger="window",
            detail=f"capacity x{fault.factor:g}"))
        if math.isinf(fault.duration):
            return
        yield env.timeout(fault.duration)
        flows.set_link_capacity(driver.nic_in, saved_in)
        flows.set_link_capacity(driver.nic_out, saved_out)
        self._record(FaultInjected(
            time=env.now, fault="nic_restored",
            target=f"driver {driver.hostname}", trigger="window"))

    def __repr__(self) -> str:
        state = "armed" if self._armed else "idle"
        return (f"<FaultController {state} plan={len(self.plan)} "
                f"injected={len(self.injected)}>")
