"""Stage-log analysis: the paper's §2.3 methodology, reproduced.

The authors found MLlib's bottleneck by analyzing Spark *history logs*:
per-stage submit/finish timestamps, classified into tree-aggregation
stages vs everything else, with the first aggregation stage counted as
"Agg-compute" and the rest as "Agg-reduce". This module applies exactly
that procedure to the engine's :class:`~repro.rdd.scheduler.StageInfo`
log, independently of the live stopwatch instrumentation — giving a
second, log-derived route to the Figure 2/3/4 decompositions (and a
cross-check of the first: see ``tests/bench/test_history.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from ..obs.analysis import classify_stage
from .harness import format_table

if TYPE_CHECKING:  # pragma: no cover
    from ..rdd.scheduler import StageInfo

__all__ = ["StageLogAnalysis", "analyze_stage_log", "render_stage_log",
           "dump_history", "load_history"]


@dataclass
class StageLogAnalysis:
    """Aggregated view over one stage log window."""

    num_stages: int
    agg_compute: float
    agg_reduce: float
    other: float
    stage_kinds: Dict[str, int]
    #: stages that were submitted but never finished (excluded from totals)
    unfinished: int = 0

    @property
    def total_stage_time(self) -> float:
        return self.agg_compute + self.agg_reduce + self.other

    @property
    def aggregation_share(self) -> float:
        """Share of stage time inside aggregation (the Figure 2 metric)."""
        total = self.total_stage_time
        return (self.agg_compute + self.agg_reduce) / total if total else 0.0


def _classify(stage: "StageInfo") -> str:
    """Which decomposition bucket a stage belongs to.

    Delegates to :func:`repro.obs.analysis.classify_stage`, the shared
    home of the authors' log-mining rule — the live event-log pipeline
    and this stage-log miner must agree bucket for bucket.
    """
    return classify_stage(stage.kind, stage.rdd_name)


def analyze_stage_log(stages: Sequence["StageInfo"]) -> StageLogAnalysis:
    """Classify and total a window of the DAG scheduler's stage log.

    Stages that never finished (``duration is None``) are counted in
    ``unfinished`` and excluded from the time totals.
    """
    agg_compute = agg_reduce = other = 0.0
    unfinished = 0
    kinds: Dict[str, int] = {}
    for stage in stages:
        kinds[stage.kind] = kinds.get(stage.kind, 0) + 1
        duration = stage.duration
        if duration is None:
            unfinished += 1
            continue
        bucket = _classify(stage)
        if bucket == "agg_compute":
            agg_compute += duration
        elif bucket == "agg_reduce":
            agg_reduce += duration
        else:
            other += duration
    return StageLogAnalysis(num_stages=len(stages),
                            agg_compute=agg_compute,
                            agg_reduce=agg_reduce,
                            other=other, stage_kinds=kinds,
                            unfinished=unfinished)


def render_stage_log(stages: Sequence["StageInfo"],
                     title: str = "Stage history") -> str:
    """A Spark-UI-flavoured text rendering of the stage timeline."""
    rows = []
    for stage in stages:
        duration = stage.duration
        rows.append((stage.stage_id, stage.kind, stage.rdd_name,
                     stage.num_tasks, stage.attempt,
                     round(stage.submitted_at, 4),
                     "-" if duration is None else round(duration, 4),
                     _classify(stage)))
    return format_table(
        ["Stage", "Kind", "RDD", "Tasks", "Attempt", "Submitted",
         "Duration", "Bucket"],
        rows, title=title)


# ---------------------------------------------------------------- history IO
def dump_history(stages: Sequence["StageInfo"],
                 target: Union[str, Path]) -> int:
    """Write a stage log as a JSON-lines history file.

    One JSON object per stage, in the spirit of Spark's event-log files
    (which is what the paper's authors actually mined). Returns the number
    of records written.
    """
    path = Path(target)
    with path.open("w", encoding="utf-8") as handle:
        for stage in stages:
            handle.write(json.dumps({
                "stage_id": stage.stage_id,
                "kind": stage.kind,
                "rdd_name": stage.rdd_name,
                "num_tasks": stage.num_tasks,
                "attempt": stage.attempt,
                "submitted_at": stage.submitted_at,
                "finished_at": stage.finished_at,
            }))
            handle.write("\n")
    return len(stages)


def load_history(source: Union[str, Path]) -> List["StageInfo"]:
    """Read a JSON-lines history file back into StageInfo records."""
    from ..rdd.scheduler import StageInfo

    stages: List[StageInfo] = []
    for line in Path(source).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        finished: Optional[float] = (None if raw["finished_at"] is None
                                     else float(raw["finished_at"]))
        stages.append(StageInfo(
            stage_id=int(raw["stage_id"]),
            kind=str(raw["kind"]),
            rdd_name=str(raw["rdd_name"]),
            num_tasks=int(raw["num_tasks"]),
            attempt=int(raw["attempt"]),
            submitted_at=float(raw["submitted_at"]),
            finished_at=finished,
        ))
    return stages
