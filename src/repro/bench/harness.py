"""Benchmark harness utilities: time decomposition and table formatting.

Every figure in the paper is either a bar/line chart of elapsed times or of
speedups; the harness renders them as aligned text tables (the benches
print exactly the rows the paper plots) and extracts the 4-way time
decomposition used by Figures 2/3/4/18:

* ``agg-compute`` — first stage of the aggregation (seqOp over partitions),
* ``agg-reduce``  — everything after it (tree levels / ring + gather),
* ``driver``      — non-scalable computation in the driver,
* ``non-agg``     — scalable computation unrelated to aggregation
  (broadcast, sampling, residual stage work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..rdd.context import SparkerContext

__all__ = ["TimeBreakdown", "BreakdownRecorder", "format_table", "geomean",
           "format_seconds"]


@dataclass(frozen=True)
class TimeBreakdown:
    """The paper's 4-way end-to-end decomposition."""

    agg_compute: float
    agg_reduce: float
    driver: float
    non_agg: float

    @property
    def total(self) -> float:
        return self.agg_compute + self.agg_reduce + self.driver + self.non_agg

    @property
    def aggregation(self) -> float:
        """Combined aggregation time (Figure 2's "aggregation" bar)."""
        return self.agg_compute + self.agg_reduce

    @property
    def agg_fraction(self) -> float:
        """Share of end-to-end time spent aggregating."""
        return self.aggregation / self.total if self.total > 0 else 0.0

    def scaled(self, factor: float) -> "TimeBreakdown":
        return TimeBreakdown(self.agg_compute * factor,
                             self.agg_reduce * factor,
                             self.driver * factor,
                             self.non_agg * factor)

    def __str__(self) -> str:
        return (f"compute={self.agg_compute:.3f}s "
                f"reduce={self.agg_reduce:.3f}s driver={self.driver:.3f}s "
                f"non-agg={self.non_agg:.3f}s (total {self.total:.3f}s)")


class BreakdownRecorder:
    """Brackets a training run and extracts its TimeBreakdown.

    Usage::

        rec = BreakdownRecorder(sc)
        ...  # run the workload
        breakdown = rec.finish()
    """

    def __init__(self, sc: "SparkerContext"):
        self.sc = sc
        self._t0 = sc.now
        self._spans0 = dict(sc.stopwatch.as_dict())

    def _delta(self, key: str) -> float:
        return self.sc.stopwatch.total(key) - self._spans0.get(key, 0.0)

    def finish(self) -> TimeBreakdown:
        total = self.sc.now - self._t0
        agg_compute = self._delta("agg.compute")
        agg_reduce = self._delta("agg.reduce")
        driver = self._delta("ml.driver")
        non_agg = max(total - agg_compute - agg_reduce - driver, 0.0)
        return TimeBreakdown(agg_compute, agg_reduce, driver, non_agg)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of nothing")
    if any(v <= 0 for v in values):
        raise ValueError(f"geomean needs positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_seconds(seconds: float) -> str:
    """Human-scaled time: µs/ms/s."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table (numbers get sensible formatting)."""
    def render(cell) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000 or abs(cell) < 0.01:
                return f"{cell:.3g}"
            return f"{cell:.3f}".rstrip("0").rstrip(".")
        return str(cell)

    grid: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in grid:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in grid:
        out.append(line(row))
    return "\n".join(out)
