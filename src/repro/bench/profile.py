"""Host-time attribution: where does the wall-clock actually go?

The engine's host cost has three very different owners:

* **sim-core** — the discrete-event kernel, the flow network and the
  communication/RDD machinery that drives virtual time forward,
* **user-compute** — the NumPy math inside tasks (gradients, merges,
  dataset generation): work a real cluster would also pay,
* **serde** — payload size estimation and (de)serialization.

:func:`profile_host` runs a callable under :mod:`cProfile` and buckets
every function's *self* time into those categories by module path, so a
perf PR can show exactly which owner it moved. Attribution is by the file
a function is defined in; C builtins carry no file and land in ``other``
(they are a stable, small slice — dict/heap ops mostly owned by the
kernel).

Command line::

    python -m repro.bench.profile LR-A --nodes 8 --agg tree --iters 3

prints the bucket table plus the top self-time functions for one workload.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["HostTimeBreakdown", "profile_host", "classify_path"]

#: first match wins; paths are matched as substrings of the defining file
_BUCKET_RULES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("serde", ("/repro/serde/",)),
    ("sim_core", ("/repro/sim/", "/repro/cluster/", "/repro/comm/",
                  "/repro/rdd/", "/repro/obs/")),
    ("user_compute", ("/repro/ml/", "/repro/data/", "/numpy/",
                      "numpy/__init__")),
)

#: every bucket a breakdown reports, in display order
BUCKETS: Tuple[str, ...] = ("sim_core", "user_compute", "serde", "other")


def classify_path(filename: str) -> str:
    """Bucket name for a function defined in ``filename``."""
    for bucket, needles in _BUCKET_RULES:
        for needle in needles:
            if needle in filename:
                return bucket
    return "other"


@dataclass
class HostTimeBreakdown:
    """Self-time per owner, plus the heaviest individual functions."""

    total: float
    buckets: Dict[str, float] = field(default_factory=dict)
    #: ``(bucket, "file:function", self_seconds)`` — heaviest first
    top: List[Tuple[str, str, float]] = field(default_factory=list)

    def fraction(self, bucket: str) -> float:
        """Share of total self-time owned by ``bucket`` (0.0 when idle)."""
        if self.total <= 0:
            return 0.0
        return self.buckets.get(bucket, 0.0) / self.total

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by ``benchmarks/host_perf.py``)."""
        return {
            "total_self_time": self.total,
            "buckets": dict(self.buckets),
            "fractions": {b: self.fraction(b) for b in BUCKETS},
            "top": [
                {"bucket": bucket, "function": name, "self_time": seconds}
                for bucket, name, seconds in self.top
            ],
        }

    def __str__(self) -> str:
        parts = [
            f"{bucket}={self.buckets.get(bucket, 0.0):.3f}s"
            f" ({self.fraction(bucket):.0%})"
            for bucket in BUCKETS
        ]
        return f"host time {self.total:.3f}s: " + ", ".join(parts)


def profile_host(fn: Callable, *args: Any,
                 top_n: int = 15, **kwargs: Any
                 ) -> Tuple[Any, HostTimeBreakdown]:
    """Run ``fn(*args, **kwargs)`` under cProfile and attribute its time.

    Returns ``(result, breakdown)``. The callable runs exactly once;
    exceptions propagate (with the profiler already detached).
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()

    stats = pstats.Stats(profiler)
    buckets: Dict[str, float] = {bucket: 0.0 for bucket in BUCKETS}
    rows: List[Tuple[str, str, float]] = []
    total = 0.0
    for (filename, _lineno, funcname), entry in stats.stats.items():
        self_time = entry[2]  # (cc, nc, tt, ct, callers)
        if self_time <= 0.0:
            continue
        bucket = "other" if filename == "~" else classify_path(filename)
        buckets[bucket] += self_time
        total += self_time
        short = filename.rsplit("/", 1)[-1] if filename != "~" else "builtin"
        rows.append((bucket, f"{short}:{funcname}", self_time))
    rows.sort(key=lambda row: row[2], reverse=True)
    return result, HostTimeBreakdown(total=total, buckets=buckets,
                                     top=rows[:top_n])


def _main(argv: List[str] | None = None) -> int:
    import argparse

    from ..cluster import ClusterConfig
    from .workloads import run_workload

    parser = argparse.ArgumentParser(
        description="Attribute one workload's host time to its owners")
    parser.add_argument("workload", nargs="?", default="LR-A")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--agg", default="tree",
                        choices=["tree", "split", "ring"])
    parser.add_argument("--iters", type=int, default=3)
    parser.add_argument("--pool", type=int, default=0,
                        help="host pool size (0/1 = inline)")
    parser.add_argument("--top", type=int, default=15)
    args = parser.parse_args(argv)

    from ..core.spec import AggregationSpec

    result, breakdown = profile_host(
        run_workload, args.workload, ClusterConfig.bic(args.nodes),
        aggregation=args.agg, iterations=args.iters,
        spec=AggregationSpec(host_pool=args.pool or None), top_n=args.top)
    print(result)
    print(breakdown)
    for bucket, name, seconds in breakdown.top:
        print(f"  {seconds:8.3f}s  [{bucket:>12}]  {name}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(_main())
