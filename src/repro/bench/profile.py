"""Host-time attribution: where does the wall-clock actually go?

The engine's host cost has three very different owners:

* **sim-core** — the discrete-event kernel, the flow network and the
  communication/RDD machinery that drives virtual time forward,
* **user-compute** — the NumPy math inside tasks (gradients, merges,
  dataset generation): work a real cluster would also pay,
* **serde** — payload size estimation and (de)serialization.

:func:`profile_host` runs a callable under :mod:`cProfile` and buckets
every function's *self* time into those categories by module path, so a
perf PR can show exactly which owner it moved. Attribution is by the file
a function is defined in; C builtins carry no file and land in ``other``
(they are a stable, small slice — dict/heap ops mostly owned by the
kernel).

``sim_core`` is additionally split into sub-buckets, because the two
hottest kernel paths evolve independently and a perf PR needs to show
which one it touched:

* **allocator** — the max-min fair flow solver (``repro/cluster/flows``),
* **calendar** — the bucket-queue event calendar (``repro/sim/calendar``),
* **dispatch** — everything else driving virtual time (event trampoline,
  executors, RDD machinery, comm engines).

Command line::

    python -m repro.bench.profile LR-A --nodes 8 --agg tree --iters 3

prints the bucket table plus the top self-time functions for one workload.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["HostTimeBreakdown", "profile_host", "classify_path",
           "classify_sim_core", "BUCKETS", "SIM_CORE_SUBBUCKETS"]

#: first match wins; paths are matched as substrings of the defining file
_BUCKET_RULES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("serde", ("/repro/serde/",)),
    ("sim_core", ("/repro/sim/", "/repro/cluster/", "/repro/comm/",
                  "/repro/rdd/", "/repro/obs/")),
    ("user_compute", ("/repro/ml/", "/repro/data/", "/numpy/",
                      "numpy/__init__")),
)

#: every bucket a breakdown reports, in display order
BUCKETS: Tuple[str, ...] = ("sim_core", "user_compute", "serde", "other")

#: first match wins; sub-attribution of ``sim_core`` self-time
_SIM_CORE_SUBRULES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("allocator", ("/repro/cluster/flows",)),
    ("calendar", ("/repro/sim/calendar",)),
)

#: sub-buckets of ``sim_core``, in display order
SIM_CORE_SUBBUCKETS: Tuple[str, ...] = ("allocator", "calendar", "dispatch")


def classify_path(filename: str) -> str:
    """Bucket name for a function defined in ``filename``."""
    for bucket, needles in _BUCKET_RULES:
        for needle in needles:
            if needle in filename:
                return bucket
    return "other"


def classify_sim_core(filename: str) -> str:
    """Sub-bucket of ``sim_core`` for a kernel function's defining file."""
    for sub, needles in _SIM_CORE_SUBRULES:
        for needle in needles:
            if needle in filename:
                return sub
    return "dispatch"


@dataclass
class HostTimeBreakdown:
    """Self-time per owner, plus the heaviest individual functions."""

    total: float
    buckets: Dict[str, float] = field(default_factory=dict)
    #: ``sim_core`` self-time split into allocator / calendar / dispatch
    sim_core_split: Dict[str, float] = field(default_factory=dict)
    #: ``(bucket, "file:function", self_seconds)`` — heaviest first
    top: List[Tuple[str, str, float]] = field(default_factory=list)

    def fraction(self, bucket: str) -> float:
        """Share of total self-time owned by ``bucket`` (0.0 when idle)."""
        if self.total <= 0:
            return 0.0
        return self.buckets.get(bucket, 0.0) / self.total

    def sim_core_fraction(self, sub: str) -> float:
        """Share of ``sim_core`` self-time owned by sub-bucket ``sub``."""
        sim_core = self.buckets.get("sim_core", 0.0)
        if sim_core <= 0:
            return 0.0
        return self.sim_core_split.get(sub, 0.0) / sim_core

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by ``benchmarks/host_perf.py``)."""
        return {
            "total_self_time": self.total,
            "buckets": dict(self.buckets),
            "fractions": {b: self.fraction(b) for b in BUCKETS},
            "sim_core_split": dict(self.sim_core_split),
            "sim_core_fractions": {
                s: self.sim_core_fraction(s) for s in SIM_CORE_SUBBUCKETS
            },
            "top": [
                {"bucket": bucket, "function": name, "self_time": seconds}
                for bucket, name, seconds in self.top
            ],
        }

    def __str__(self) -> str:
        parts = [
            f"{bucket}={self.buckets.get(bucket, 0.0):.3f}s"
            f" ({self.fraction(bucket):.0%})"
            for bucket in BUCKETS
        ]
        split = ", ".join(
            f"{sub} {self.sim_core_fraction(sub):.0%}"
            for sub in SIM_CORE_SUBBUCKETS
        )
        return (f"host time {self.total:.3f}s: " + ", ".join(parts)
                + f" [sim_core: {split}]")


def profile_host(fn: Callable, *args: Any,
                 top_n: int = 15, **kwargs: Any
                 ) -> Tuple[Any, HostTimeBreakdown]:
    """Run ``fn(*args, **kwargs)`` under cProfile and attribute its time.

    Returns ``(result, breakdown)``. The callable runs exactly once;
    exceptions propagate (with the profiler already detached).
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()

    stats = pstats.Stats(profiler)
    buckets: Dict[str, float] = {bucket: 0.0 for bucket in BUCKETS}
    sim_core_split: Dict[str, float] = {
        sub: 0.0 for sub in SIM_CORE_SUBBUCKETS}
    rows: List[Tuple[str, str, float]] = []
    total = 0.0
    for (filename, _lineno, funcname), entry in stats.stats.items():
        self_time = entry[2]  # (cc, nc, tt, ct, callers)
        if self_time <= 0.0:
            continue
        bucket = "other" if filename == "~" else classify_path(filename)
        buckets[bucket] += self_time
        if bucket == "sim_core":
            sim_core_split[classify_sim_core(filename)] += self_time
        total += self_time
        short = filename.rsplit("/", 1)[-1] if filename != "~" else "builtin"
        rows.append((bucket, f"{short}:{funcname}", self_time))
    rows.sort(key=lambda row: row[2], reverse=True)
    return result, HostTimeBreakdown(total=total, buckets=buckets,
                                     sim_core_split=sim_core_split,
                                     top=rows[:top_n])


def _main(argv: List[str] | None = None) -> int:
    import argparse

    from ..cluster import ClusterConfig
    from .workloads import run_workload

    parser = argparse.ArgumentParser(
        description="Attribute one workload's host time to its owners")
    parser.add_argument("workload", nargs="?", default="LR-A")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--agg", default="tree",
                        choices=["tree", "split", "ring"])
    parser.add_argument("--iters", type=int, default=3)
    parser.add_argument("--pool", type=int, default=0,
                        help="host pool size (0/1 = inline)")
    parser.add_argument("--top", type=int, default=15)
    args = parser.parse_args(argv)

    from ..core.spec import AggregationSpec

    result, breakdown = profile_host(
        run_workload, args.workload, ClusterConfig.bic(args.nodes),
        aggregation=args.agg, iterations=args.iters,
        spec=AggregationSpec(host_pool=args.pool or None), top_n=args.top)
    print(result)
    print(breakdown)
    sim_core = breakdown.buckets.get("sim_core", 0.0)
    print(f"  sim_core breakdown ({sim_core:.3f}s):")
    for sub in SIM_CORE_SUBBUCKETS:
        print(f"  {breakdown.sim_core_split.get(sub, 0.0):8.3f}s"
              f"  [{sub:>12}]  {breakdown.sim_core_fraction(sub):.0%}"
              " of sim_core")
    for bucket, name, seconds in breakdown.top:
        print(f"  {seconds:8.3f}s  [{bucket:>12}]  {name}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(_main())
