"""One experiment function per paper table and figure.

Each function runs the simulation(s) behind one exhibit of the paper's
evaluation and returns structured rows; ``as_table`` renders them exactly
like the paper reports them (times, speedups, decompositions). The
``benchmarks/`` suite calls these at full scale; unit tests call them with
reduced parameters and assert the qualitative shape.

Scale knobs default to the paper's own sweep points; pass smaller ones for
quick runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster import KB, MB, Cluster, ClusterConfig
from ..core.spec import AggregationSpec
from ..comm import (
    MpiCommunicator,
    ScalableCommunicator,
    bm_transport,
    measure_latency,
    measure_throughput,
    mpi_transport,
    sc_transport,
)
from ..data.registry import DATASETS
from ..serde import SizedPayload
from ..sim import Environment
from .harness import TimeBreakdown, format_table
from .workloads import WORKLOADS, WorkloadResult, run_workload

__all__ = [
    "table1_clusters",
    "table2_datasets",
    "table3_models",
    "fig1_mllib_speedup",
    "fig2_time_breakdown",
    "fig3_lda_scaling_bic",
    "fig4_lda_scaling_aws",
    "fig12_p2p_latency",
    "fig13_p2p_throughput",
    "fig14_reduce_scatter_parallelism",
    "fig15_reduce_scatter_scaling",
    "fig16_aggregation_scaling",
    "fig17_e2e_speedup",
    "fig18_sparker_scaling",
    "sparse_agg_comparison",
    "aws_config_for_cores",
    "bic_config_for_cores",
]


# ---------------------------------------------------------------- tables
def table1_clusters() -> str:
    """Table 1: the two cluster configurations."""
    bic, aws = ClusterConfig.bic(), ClusterConfig.aws()
    rows = [
        ("Number of nodes", bic.num_nodes, aws.num_nodes),
        ("Logical cores per node", bic.cores_per_node, aws.cores_per_node),
        ("Memory per node (GB)", int(bic.memory_per_node / (1 << 30)),
         int(aws.memory_per_node / (1 << 30))),
        ("Executors per node", bic.executors_per_node,
         aws.executors_per_node),
        ("Executor cores", bic.executor_cores, aws.executor_cores),
        ("Executor memory (GB)", int(bic.executor_memory / (1 << 30)),
         int(aws.executor_memory / (1 << 30))),
        ("NIC bandwidth (MB/s)", round(bic.nic_bandwidth / MB),
         round(aws.nic_bandwidth / MB)),
    ]
    return format_table(["Configuration", "BIC", "AWS"], rows,
                        title="Table 1: simulated cluster configurations")


def table2_datasets() -> str:
    """Table 2: datasets and their surrogates."""
    rows = []
    for spec in DATASETS.values():
        rows.append((spec.name, f"{spec.paper_samples:,}",
                     f"{spec.paper_features:,}", spec.task, spec.source,
                     f"{spec.surrogate_samples:,}",
                     f"{spec.surrogate_features:,}",
                     f"{spec.size_scale:.0f}x"))
    return format_table(
        ["Dataset", "Samples", "Features", "Task", "Source",
         "Surr.samples", "Surr.features", "SizeScale"],
        rows, title="Table 2: datasets (paper scale and surrogate scale)")


def table3_models() -> str:
    """Table 3: the three MLlib models."""
    rows = [
        ("Logistic Regression", "regParam=0, elasticNetParam=0",
         "classification"),
        ("SVM", "miniBatchFrac=1.0, regParam=0.01", "classification"),
        ("LDA", "K=100", "topic model"),
    ]
    return format_table(["Name", "Parameter", "Task"], rows,
                        title="Table 3: models")


# ----------------------------------------------------------- Figures 1/2
def fig1_mllib_speedup(workloads: Optional[Sequence[str]] = None,
                       iterations: int = 2,
                       ) -> List[Tuple[str, float, float, float]]:
    """Figure 1: 8-node vs 1-node MLlib (treeAggregate) speedups on BIC.

    Returns ``[(workload, t_1node, t_8node, speedup), ...]``.
    """
    names = list(workloads or WORKLOADS)
    rows = []
    for name in names:
        t1 = run_workload(name, ClusterConfig.bic(num_nodes=1),
                          aggregation="tree", iterations=iterations)
        t8 = run_workload(name, ClusterConfig.bic(num_nodes=8),
                          aggregation="tree", iterations=iterations)
        rows.append((name, t1.end_to_end, t8.end_to_end,
                     t1.end_to_end / t8.end_to_end))
    return rows


def fig2_time_breakdown(workloads: Optional[Sequence[str]] = None,
                        iterations: int = 2,
                        ) -> List[Tuple[str, TimeBreakdown]]:
    """Figure 2: aggregation / non-aggregation / driver shares on 8-node BIC."""
    names = list(workloads or WORKLOADS)
    rows = []
    for name in names:
        result = run_workload(name, ClusterConfig.bic(num_nodes=8),
                              aggregation="tree", iterations=iterations)
        rows.append((name, result.breakdown))
    return rows


# -------------------------------------------------------- Figures 3/4/18
def bic_config_for_cores(cores: int) -> ClusterConfig:
    """A BIC slice with ``cores`` total executor cores (24 per node)."""
    per_node = ClusterConfig.bic().executors_per_node \
        * ClusterConfig.bic().executor_cores
    if cores % per_node or cores == 0:
        raise ValueError(f"BIC core counts are multiples of {per_node}")
    return ClusterConfig.bic(num_nodes=cores // per_node)


def aws_config_for_cores(cores: int) -> ClusterConfig:
    """An AWS slice with ``cores`` total executor cores.

    Below one full node (96 cores) executors shrink onto a single node,
    mirroring the paper's intra-node configurations (§5.3.2).
    """
    base = ClusterConfig.aws()
    per_node = base.executors_per_node * base.executor_cores  # 96
    if cores >= per_node:
        if cores % per_node:
            raise ValueError(
                f"multi-node AWS core counts are multiples of {per_node}")
        return base.with_nodes(cores // per_node)
    if cores % base.executor_cores:
        raise ValueError(
            f"intra-node AWS core counts are multiples of "
            f"{base.executor_cores}")
    return base.with_nodes(1).with_executors_per_node(
        cores // base.executor_cores, base.executor_cores)


def _lda_scaling(configs: Sequence[ClusterConfig], aggregation: str,
                 iterations: int) -> List[Tuple[int, WorkloadResult]]:
    rows = []
    for config in configs:
        result = run_workload("LDA-N", config, aggregation=aggregation,
                              iterations=iterations)
        rows.append((config.num_executors * config.executor_cores, result))
    return rows


def fig3_lda_scaling_bic(core_counts: Sequence[int] = (24, 48, 96, 192),
                         iterations: int = 2,
                         ) -> List[Tuple[int, WorkloadResult]]:
    """Figure 3: LDA-N decomposed end-to-end time vs cores on BIC (Spark)."""
    return _lda_scaling([bic_config_for_cores(c) for c in core_counts],
                        "tree", iterations)


def fig4_lda_scaling_aws(core_counts: Sequence[int] = (8, 96, 192, 480, 960),
                         iterations: int = 2,
                         ) -> List[Tuple[int, WorkloadResult]]:
    """Figure 4: LDA-N decomposed end-to-end time vs cores on AWS (Spark)."""
    return _lda_scaling([aws_config_for_cores(c) for c in core_counts],
                        "tree", iterations)


def fig18_sparker_scaling(core_counts: Sequence[int] = (8, 96, 192, 480, 960),
                          iterations: int = 2,
                          ) -> List[Tuple[int, WorkloadResult, WorkloadResult]]:
    """Figure 18: LDA-N on AWS, Spark (left bar) vs Sparker (right bar).

    Returns ``[(cores, spark_result, sparker_result), ...]``.
    """
    rows = []
    for cores in core_counts:
        config = aws_config_for_cores(cores)
        spark = run_workload("LDA-N", config, aggregation="tree",
                             iterations=iterations)
        sparker = run_workload("LDA-N", config, aggregation="split",
                               iterations=iterations)
        rows.append((cores, spark, sparker))
    return rows


# ------------------------------------------------------ Figures 12/13/14/15
def fig12_p2p_latency() -> Dict[str, float]:
    """Figure 12: point-to-point one-way latency of BM / SC / MPI on BIC."""
    out = {}
    for label, factory in (("BM", bm_transport), ("SC", sc_transport),
                           ("MPI", mpi_transport)):
        env = Environment()
        cluster = Cluster(env, ClusterConfig.bic(num_nodes=2))
        out[label] = measure_latency(cluster, factory(cluster.config))
    return out


def fig13_p2p_throughput(sizes: Optional[Sequence[int]] = None,
                         ) -> List[Tuple[int, Dict[str, float]]]:
    """Figure 13: p2p throughput vs message size; SC parallelism 1/2/4, MPI."""
    sizes = list(sizes or [1 * KB, 8 * KB, 64 * KB, 512 * KB, 1 * MB,
                           8 * MB, 32 * MB, 64 * MB, 128 * MB, 256 * MB])
    from ..service.session import SparkerSession

    rows = []
    for nbytes in sizes:
        cell: Dict[str, float] = {}
        for label, factory, parallelism in (
                ("MPI", mpi_transport, 1),
                ("SC-1", sc_transport, 1),
                ("SC-2", sc_transport, 2),
                ("SC-4", sc_transport, 4)):
            env = Environment()
            cluster = Cluster(env, ClusterConfig.bic(num_nodes=2))
            cell[label] = measure_throughput(
                cluster, factory(cluster.config), nbytes,
                parallelism=parallelism)
        rows.append((nbytes, cell))
    return rows


def _run_sc_reduce_scatter(config: ClusterConfig, nbytes: float,
                           parallelism: int, topology_aware: bool,
                           num_executors: Optional[int] = None,
                           physical_elems: int = 4096) -> float:
    """Elapsed simulated seconds of one SC reduce-scatter."""
    env = Environment()
    cluster = Cluster(env, config)
    slots = (cluster.executors[:num_executors]
             if num_executors is not None else None)
    comm = ScalableCommunicator(cluster, parallelism=parallelism,
                                topology_aware=topology_aware, slots=slots)
    values = [SizedPayload(np.ones(physical_elems), sim_bytes=nbytes)
              for _ in range(comm.size)]
    began = env.now
    proc = env.process(comm.reduce_scatter(
        values, lambda u, i, n: u.split(i, n), lambda a, b: a.merge(b)))
    env.run(until=proc)
    return env.now - began


def _run_mpi_reduce_scatter(config: ClusterConfig, nbytes: float,
                            num_executors: Optional[int] = None,
                            physical_elems: int = 4096) -> float:
    """Elapsed simulated seconds of one MPI reduce-scatter (auto algorithm)."""
    env = Environment()
    cluster = Cluster(env, config)
    slots = (cluster.executors[:num_executors]
             if num_executors is not None else None)
    comm = MpiCommunicator(cluster, slots=slots)
    values = [SizedPayload(np.ones(physical_elems), sim_bytes=nbytes)
              for _ in range(comm.size)]
    began = env.now
    proc = env.process(comm.reduce_scatter(
        values, lambda u, i, n: u.split(i, n), lambda a, b: a.merge(b)))
    env.run(until=proc)
    return env.now - began


def fig14_reduce_scatter_parallelism(
        parallelisms: Sequence[int] = (1, 2, 4, 8),
        nbytes: float = 256 * MB,
        num_nodes: int = 8) -> Dict[str, Dict]:
    """Figure 14: reduce-scatter vs parallelism, plus topology awareness.

    48 executors (8 BIC nodes), 256 MB messages, as in the paper.
    """
    config = ClusterConfig.bic(num_nodes=num_nodes)
    by_parallelism = {
        p: _run_sc_reduce_scatter(config, nbytes, p, topology_aware=True)
        for p in parallelisms
    }
    topo = {
        "hostname-sorted": by_parallelism.get(4) if 4 in by_parallelism
        else _run_sc_reduce_scatter(config, nbytes, 4, topology_aware=True),
        "id-sorted": _run_sc_reduce_scatter(config, nbytes, 4,
                                            topology_aware=False),
    }
    return {"parallelism": by_parallelism, "topology": topo}


def fig15_reduce_scatter_scaling(
        executor_counts: Sequence[int] = (6, 12, 24, 48),
        sizes: Sequence[float] = (256 * KB, 256 * MB),
        ) -> List[Tuple[float, int, float, float]]:
    """Figure 15: reduce-scatter time vs executors, SC vs MPI.

    Executors scale with BIC nodes (6 per node). Returns
    ``[(nbytes, n_executors, sc_seconds, mpi_seconds), ...]``.
    """
    from ..service.session import SparkerSession

    rows = []
    for nbytes in sizes:
        for n_exec in executor_counts:
            if n_exec % 6:
                raise ValueError("BIC executor counts are multiples of 6")
            config = ClusterConfig.bic(num_nodes=n_exec // 6)
            sc_time = _run_sc_reduce_scatter(config, nbytes, parallelism=4,
                                             topology_aware=True)
            mpi_time = _run_mpi_reduce_scatter(config, nbytes)
            rows.append((nbytes, n_exec, sc_time, mpi_time))
    return rows


# -------------------------------------------------------------- Figure 16
def fig16_aggregation_scaling(
        node_counts: Sequence[int] = (1, 2, 4, 8),
        sizes: Sequence[float] = (1 * KB, 8 * MB, 256 * MB),
        methods: Sequence[str] = ("tree", "tree_imm", "split"),
        physical_elems: int = 512,
        ) -> List[Tuple[float, int, str, float]]:
    """Figure 16: RDD aggregation micro-benchmark.

    Sums an RDD of fixed-size arrays (one per core, MEMORY_ONLY,
    pre-loaded with ``count``) with tree / tree+IMM / split aggregation.
    Returns ``[(nbytes, nodes, method, seconds), ...]``.
    """
    from ..service.session import SparkerSession

    rows = []
    for nbytes in sizes:
        for nodes in node_counts:
            for method in methods:
                sc = SparkerSession(ClusterConfig.bic(num_nodes=nodes)).context()
                n_parts = sc.cluster.total_cores
                data = [SizedPayload(np.ones(physical_elems),
                                     sim_bytes=nbytes)
                        for _ in range(n_parts)]
                rdd = sc.parallelize(data, n_parts).cache()
                rdd.count()
                zero = lambda: SizedPayload(  # noqa: E731
                    np.zeros(physical_elems), sim_bytes=nbytes)
                began = sc.now
                if method == "split":
                    result = rdd.split_aggregate(
                        zero, lambda a, x: a.merge_inplace(x),
                        lambda u, i, n: u.split(i, n),
                        lambda a, b: a.merge(b),
                        SizedPayload.concat,
                        AggregationSpec(parallelism=4))
                else:
                    result = rdd.tree_aggregate(
                        zero, lambda a, x: a.merge_inplace(x),
                        lambda a, b: a.merge(b),
                        imm=(method == "tree_imm"))
                elapsed = sc.now - began
                expected = float(n_parts)
                if not np.allclose(result.data, expected):
                    raise AssertionError(
                        f"aggregation result wrong for {method}: "
                        f"{result.data[:3]} != {expected}")
                rows.append((nbytes, nodes, method, elapsed))
    return rows


# -------------------------------------------------------------- Figure 17
def fig17_e2e_speedup(clusters: Sequence[str] = ("BIC", "AWS"),
                      workloads: Optional[Sequence[str]] = None,
                      iterations: int = 2,
                      ) -> List[Tuple[str, str, float, float, float]]:
    """Figure 17: end-to-end Sparker speedup over Spark per workload.

    Returns ``[(cluster, workload, spark_s, sparker_s, speedup), ...]``.
    """
    names = list(workloads or WORKLOADS)
    configs = {"BIC": ClusterConfig.bic(), "AWS": ClusterConfig.aws()}
    rows = []
    for cluster_name in clusters:
        config = configs[cluster_name]
        for name in names:
            spark = run_workload(name, config, aggregation="tree",
                                 iterations=iterations)
            sparker = run_workload(name, config, aggregation="split",
                                   iterations=iterations)
            rows.append((cluster_name, name, spark.end_to_end,
                         sparker.end_to_end,
                         spark.end_to_end / sparker.end_to_end))
    return rows


# ------------------------------------------------- sparse aggregation bench
def sparse_agg_comparison(points: list, num_features: int,
                          config: Optional[ClusterConfig] = None,
                          aggregation: str = "split",
                          iterations: int = 2, parallelism: int = 4,
                          partitions: Optional[int] = None,
                          size_scale: float = 1.0,
                          batched: bool = False,
                          sparse_policy=None) -> Dict[str, Dict]:
    """Dense vs density-adaptive aggregation on one LR training set.

    Trains twice with identical inputs — classic dense payloads, then the
    adaptive sparse path — tracing both runs, and returns per-mode
    simulated times, the Figure-2 breakdown, bytes-on-wire (with the
    dense-equivalent baseline from the ring-hop events), and the final
    weights so callers can assert bit-identity.
    """
    from ..ml.classification import LogisticRegressionWithSGD
    from ..obs import RecordingListener, analyze_events
    from ..service.session import SparkerSession
    from .harness import BreakdownRecorder

    config = config or ClusterConfig.bic()
    out: Dict[str, Dict] = {}
    for mode in ("dense", "adaptive"):
        sc = SparkerSession(config).context()
        n_parts = partitions or sc.default_parallelism
        rdd = sc.parallelize(points, n_parts).cache()
        rdd.count()
        rec = RecordingListener()
        sc.event_bus.subscribe(rec)
        recorder = BreakdownRecorder(sc)
        began = sc.now
        spec = AggregationSpec(
            parallelism=parallelism,
            sparse_aggregation=(mode == "adaptive"),
            sparse_policy=sparse_policy if mode == "adaptive" else None,
            batched=batched)
        model = LogisticRegressionWithSGD.train(
            rdd, num_features, num_iterations=iterations,
            aggregation=aggregation, spec=spec,
            size_scale=size_scale)
        elapsed = sc.now - began
        breakdown = recorder.finish()
        analysis = analyze_events(rec.events)
        sparse = analysis.sparse
        out[mode] = {
            "end_to_end": elapsed,
            "agg_compute": breakdown.agg_compute,
            "agg_reduce": breakdown.agg_reduce,
            "agg_time": breakdown.agg_compute + breakdown.agg_reduce,
            "message_bytes": analysis.message_bytes,
            "ring_wire_bytes": sparse.wire_send_bytes,
            "ring_dense_bytes": sparse.dense_send_bytes,
            "bytes_saved": sparse.bytes_saved,
            "sparse_hops": sparse.sparse_hops,
            "dense_hops": sparse.dense_hops,
            "switches": len(sparse.switches),
            "final_loss": model.losses[-1],
            "weights": model.weights,
        }
    return out


# -------------------------------------------------------------- rendering
def breakdown_rows(rows: List[Tuple[int, WorkloadResult]]) -> List[Tuple]:
    out = []
    for cores, result in rows:
        b = result.breakdown
        out.append((cores, b.agg_compute, b.agg_reduce, b.driver, b.non_agg,
                    result.end_to_end))
    return out
