"""Regenerate the paper's tables and figures from the command line.

Usage::

    python -m repro.bench --list
    python -m repro.bench fig16 fig12          # specific exhibits
    python -m repro.bench --quick all          # reduced-scale everything

Prints each exhibit's rows (the same output the benchmark suite saves
under ``benchmarks/results/``). The ``--quick`` flag shrinks sweeps for a
fast smoke pass; full-scale runs match the `pytest benchmarks/` suite.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Tuple

from ..cluster import KB, MB
from . import experiments as exp
from .harness import format_table, geomean


def _fig1(quick: bool) -> str:
    rows = exp.fig1_mllib_speedup(
        workloads=("LDA-N", "LR-K") if quick else None,
        iterations=1 if quick else 2)
    table = format_table(
        ["Workload", "1-node (s)", "8-node (s)", "Speedup"],
        [(n, round(a, 2), round(b, 2), round(s, 2)) for n, a, b, s in rows],
        title="Figure 1: MLlib 8-node speedup over 1-node")
    return table + (f"\ngeomean: {geomean([r[3] for r in rows]):.2f} "
                    f"(paper 1.25)")


def _fig2(quick: bool) -> str:
    rows = exp.fig2_time_breakdown(
        workloads=("LDA-N", "LR-A") if quick else None,
        iterations=1 if quick else 2)
    return format_table(
        ["Workload", "Agg (s)", "Non-agg (s)", "Driver (s)", "Agg share"],
        [(n, round(b.aggregation, 2), round(b.non_agg, 2),
          round(b.driver, 2), f"{b.agg_fraction * 100:.0f}%")
         for n, b in rows],
        title="Figure 2: time decomposition (8-node BIC)")


def _scaling_table(rows, title: str) -> str:
    return format_table(
        ["Cores", "Agg-compute", "Agg-reduce", "Driver", "Non-agg",
         "Total"],
        [tuple(round(v, 2) if isinstance(v, float) else v for v in row)
         for row in exp.breakdown_rows(rows)],
        title=title)


def _fig3(quick: bool) -> str:
    rows = exp.fig3_lda_scaling_bic(
        core_counts=(24, 192) if quick else (24, 48, 96, 192),
        iterations=1 if quick else 2)
    return _scaling_table(rows, "Figure 3: LDA-N on BIC (Spark)")


def _fig4(quick: bool) -> str:
    rows = exp.fig4_lda_scaling_aws(
        core_counts=(8, 192) if quick else (8, 96, 192, 480, 960),
        iterations=1 if quick else 2)
    return _scaling_table(rows, "Figure 4: LDA-N on AWS (Spark)")


def _fig12(_quick: bool) -> str:
    lat = exp.fig12_p2p_latency()
    return format_table(
        ["Stack", "One-way latency (us)"],
        [(k, round(v * 1e6, 2)) for k, v in lat.items()],
        title="Figure 12: p2p latency")


def _fig13(quick: bool) -> str:
    sizes = ([8 * KB, 8 * MB, 256 * MB] if quick else None)
    rows = exp.fig13_p2p_throughput(sizes=sizes)
    return format_table(
        ["Message (B)", "MPI", "SC-1", "SC-2", "SC-4"],
        [(int(b), *(round(c[k] / MB, 1)
                    for k in ("MPI", "SC-1", "SC-2", "SC-4")))
         for b, c in rows],
        title="Figure 13: p2p throughput (MB/s)")


def _fig14(quick: bool) -> str:
    result = exp.fig14_reduce_scatter_parallelism(
        parallelisms=(1, 4) if quick else (1, 2, 4, 8))
    lines = [(f"P={p}", round(t, 3))
             for p, t in sorted(result["parallelism"].items())]
    lines += [(k, round(v, 3)) for k, v in result["topology"].items()]
    return format_table(["Setting", "Reduce-scatter (s)"], lines,
                        title="Figure 14: parallelism & topology (256MB)")


def _fig15(quick: bool) -> str:
    rows = exp.fig15_reduce_scatter_scaling(
        executor_counts=(6, 48) if quick else (6, 12, 24, 48))
    return format_table(
        ["Message (B)", "Executors", "SC (ms)", "MPI (ms)"],
        [(int(b), n, round(sc * 1e3, 2), round(mpi * 1e3, 2))
         for b, n, sc, mpi in rows],
        title="Figure 15: reduce-scatter scalability")


def _fig16(quick: bool) -> str:
    rows = exp.fig16_aggregation_scaling(
        node_counts=(1, 8) if quick else (1, 2, 4, 8),
        sizes=(8 * MB,) if quick else (1 * KB, 8 * MB, 256 * MB))
    return format_table(
        ["Message (B)", "Nodes", "Method", "Seconds"],
        [(int(b), n, m, round(s, 3)) for b, n, m, s in rows],
        title="Figure 16: aggregation scalability")


def _fig17(quick: bool) -> str:
    rows = exp.fig17_e2e_speedup(
        clusters=("BIC",) if quick else ("BIC", "AWS"),
        workloads=("LDA-N", "SVM-K") if quick else None,
        iterations=1 if quick else 2)
    return format_table(
        ["Cluster", "Workload", "Spark (s)", "Sparker (s)", "Speedup"],
        [(c, w, round(a, 2), round(b, 2), round(s, 2))
         for c, w, a, b, s in rows],
        title="Figure 17: Sparker end-to-end speedup")


def _fig18(quick: bool) -> str:
    rows = exp.fig18_sparker_scaling(
        core_counts=(8, 192) if quick else (8, 96, 192, 480, 960),
        iterations=1 if quick else 2)
    lines = []
    for cores, spark, sparker in rows:
        for label, res in (("Spark", spark), ("Sparker", sparker)):
            b = res.breakdown
            lines.append((cores, label, round(b.agg_compute, 2),
                          round(b.agg_reduce, 2), round(b.driver, 2),
                          round(res.end_to_end, 2)))
    return format_table(
        ["Cores", "Engine", "Agg-compute", "Agg-reduce", "Driver",
         "Total"],
        lines, title="Figure 18: LDA-N, Spark vs Sparker (AWS)")


EXHIBITS: Dict[str, Tuple[str, Callable[[bool], str]]] = {
    "table1": ("Cluster configurations", lambda _q: exp.table1_clusters()),
    "table2": ("Datasets", lambda _q: exp.table2_datasets()),
    "table3": ("Models", lambda _q: exp.table3_models()),
    "fig1": ("MLlib speedups (BIC)", _fig1),
    "fig2": ("Time decomposition", _fig2),
    "fig3": ("LDA-N scaling on BIC", _fig3),
    "fig4": ("LDA-N scaling on AWS", _fig4),
    "fig12": ("p2p latency", _fig12),
    "fig13": ("p2p throughput", _fig13),
    "fig14": ("RS parallelism/topology", _fig14),
    "fig15": ("RS scalability", _fig15),
    "fig16": ("Aggregation scalability", _fig16),
    "fig17": ("End-to-end speedups", _fig17),
    "fig18": ("Spark vs Sparker scaling", _fig18),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the Sparker paper's tables and figures.")
    parser.add_argument("exhibits", nargs="*",
                        help="exhibit names (e.g. fig16), or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available exhibits")
    parser.add_argument("--quick", action="store_true",
                        help="reduced-scale sweeps for a fast pass")
    args = parser.parse_args(argv)

    if args.list or not args.exhibits:
        print("available exhibits:")
        for name, (description, _fn) in EXHIBITS.items():
            print(f"  {name:8s} {description}")
        return 0

    wanted = (list(EXHIBITS) if "all" in args.exhibits
              else list(args.exhibits))
    unknown = [w for w in wanted if w not in EXHIBITS]
    if unknown:
        print(f"unknown exhibits: {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in wanted:
        _description, fn = EXHIBITS[name]
        began = time.time()
        print(f"\n{'#' * 70}\n# {name}\n{'#' * 70}")
        print(fn(args.quick))
        print(f"[{name} regenerated in {time.time() - began:.1f}s wall]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
