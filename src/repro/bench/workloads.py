"""The nine end-to-end workloads (Table 3 models x Table 2 datasets).

``LDA-E, LDA-N, LR-A, LR-C, LR-K, SVM-A, SVM-C, SVM-K, SVM-K12`` — the
combinations the paper evaluates in Figures 1/2/17 (LR-K12 is excluded:
it ran out of memory on both of the paper's configurations).

:func:`run_workload` trains one workload on one cluster configuration with
one aggregation backend and returns the end-to-end time plus the 4-way
decomposition. Iteration counts are configurable: the paper runs up to 40
(BIC) / 15 (AWS) iterations; simulated runs default to fewer since
per-iteration behaviour is what every figure reduces to (speedups are
iteration-count invariant as long as both sides use the same count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cluster import ClusterConfig
from ..core.spec import AggregationSpec, spec_with_legacy, warn_deprecated_kwarg
from ..data.registry import DatasetSpec, dataset
from .harness import TimeBreakdown

__all__ = ["WorkloadSpec", "WORKLOADS", "WorkloadResult", "run_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One model-dataset combination of the paper's evaluation."""

    name: str
    model: str  # "lr" | "svm" | "lda"
    dataset_name: str
    #: Table 3 parameters
    step_size: float = 1.0
    reg_param: float = 0.0
    mini_batch_fraction: float = 1.0

    @property
    def spec(self) -> DatasetSpec:
        return dataset(self.dataset_name)


#: the paper's nine workloads, in Figure 1 order
WORKLOADS: Dict[str, WorkloadSpec] = {
    w.name: w for w in [
        WorkloadSpec("LDA-E", "lda", "enron"),
        WorkloadSpec("LDA-N", "lda", "nytimes"),
        WorkloadSpec("LR-A", "lr", "avazu"),
        WorkloadSpec("LR-C", "lr", "criteo"),
        WorkloadSpec("LR-K", "lr", "kdd10"),
        WorkloadSpec("SVM-A", "svm", "avazu", reg_param=0.01),
        WorkloadSpec("SVM-C", "svm", "criteo", reg_param=0.01),
        WorkloadSpec("SVM-K", "svm", "kdd10", reg_param=0.01),
        WorkloadSpec("SVM-K12", "svm", "kdd12", reg_param=0.01),
    ]
}


@dataclass
class WorkloadResult:
    """Outcome of one training run."""

    workload: str
    config_name: str
    num_nodes: int
    aggregation: str
    iterations: int
    end_to_end: float
    breakdown: TimeBreakdown
    final_loss: float
    #: kernel events scheduled during the whole run (host-perf metric)
    sim_events: int = 0
    #: task attempts executed across all executors
    tasks_run: int = 0
    #: trained weight vector (LinearModel workloads; None for LDA) — lets
    #: the host-perf benchmark checksum results byte-for-byte
    final_weights: Optional[object] = None

    def __str__(self) -> str:
        return (f"{self.workload} on {self.num_nodes}x{self.config_name} "
                f"[{self.aggregation}] {self.iterations} iters: "
                f"{self.end_to_end:.2f}s ({self.breakdown})")


def run_workload(name: str, config: ClusterConfig,
                 aggregation: str = "tree", iterations: int = 3,
                 spec: Optional[AggregationSpec] = None,
                 partitions: Optional[int] = None,
                 listener=None, *,
                 parallelism: Optional[int] = None,
                 sparse_aggregation: Optional[bool] = None,
                 sparse_policy=None, batched: Optional[bool] = None,
                 host_pool=None) -> WorkloadResult:
    """Train one workload end-to-end on a fresh simulated cluster.

    Data generation and cache materialization happen before the measured
    window (the paper measures model training, with datasets preloaded
    MEMORY_ONLY). ``spec`` carries every reduction knob — collective
    algorithm (or ``"auto"`` for the cost-model tuner), parallelism, the
    density-adaptive sparse payload, the per-partition CSR ``batched``
    kernel and the host-side compute pool; the trailing keywords are
    deprecated shims mapping onto it. ``listener``, when given, is
    subscribed to the context's event bus for the training window.

    This is now a thin wrapper over
    :meth:`repro.service.SparkerSession.run` (the session is the
    canonical entry point, sync and async); the deprecated-keyword shims
    stay here so warnings keep naming ``run_workload``.
    """
    from ..service.session import SparkerSession

    if isinstance(spec, int):
        # the pre-spec signature's positional parallelism
        warn_deprecated_kwarg("parallelism", "run_workload", stacklevel=3)
        spec = AggregationSpec(parallelism=spec)
    spec = spec_with_legacy(
        spec, "run_workload",
        parallelism=parallelism, sparse_aggregation=sparse_aggregation,
        sparse_policy=sparse_policy, batched=batched, host_pool=host_pool)
    return SparkerSession(config).run(
        name, aggregation=aggregation, iterations=iterations, spec=spec,
        partitions=partitions, listener=listener)

