"""L-BFGS optimization over the distributed aggregation backends.

Modern MLlib trains logistic regression with L-BFGS rather than plain
gradient descent (``ml.classification.LogisticRegression`` →
``breeze.optimize.LBFGS``); each L-BFGS iteration still needs exactly the
global (gradient, loss) sum the paper's aggregation path computes, so the
tree-vs-split trade-off is identical. This implementation:

* computes loss+gradient through the same
  :class:`~repro.ml.optimization.GradientDescent` aggregation machinery
  (``tree`` / ``tree_imm`` / ``split`` backends),
* maintains the last ``history`` (s, y) correction pairs and applies the
  classic two-loop recursion at the driver,
* uses backtracking (Armijo) line search; every probe of a new point costs
  one more distributed pass, exactly as it would on a real cluster.

The driver-side direction computation is charged to the driver clock like
the paper's "Driver" slice.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..core.aggregation import tree_aggregate
from ..core.sai import split_aggregate
from ..core.spec import AggregationSpec, spec_with_legacy, warn_deprecated_kwarg
from ..rdd.costing import Costed
from ..rdd.rdd import RDD
from .aggregators import FlatAggregator, concat_op, reduce_op, split_op
from .gradient import Gradient
from .linalg import LabeledPoint
from .optimization import (
    AGGREGATION_MODES,
    JVM_FLOP_TIME,
    ScaledPayloadValue,
    nnz_sample_cost,
)

__all__ = ["LBFGS"]


class LBFGS:
    """Limited-memory BFGS over an RDD of labeled points.

    Parameters mirror MLlib's: ``history`` correction pairs (default 10),
    convergence on relative loss improvement, L2 regularization folded into
    the objective.
    """

    def __init__(self, gradient: Gradient, history: int = 10,
                 max_iterations: int = 25, reg_param: float = 0.0,
                 convergence_tol: float = 1e-6,
                 max_line_search_steps: int = 8,
                 aggregation: str = "tree",
                 spec: Optional[AggregationSpec] = None,
                 size_scale: float = 1.0, sample_scale: float = 1.0,
                 flop_time: float = JVM_FLOP_TIME, *,
                 parallelism: Optional[int] = None):
        if aggregation not in AGGREGATION_MODES:
            raise ValueError(
                f"aggregation must be one of {AGGREGATION_MODES}, "
                f"got {aggregation!r}")
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        if max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {max_iterations}")
        if isinstance(spec, int):
            # the pre-spec signature's positional parallelism
            warn_deprecated_kwarg("parallelism", "LBFGS", stacklevel=3)
            spec = AggregationSpec(parallelism=spec)
        self.gradient = gradient
        self.history = history
        self.max_iterations = max_iterations
        self.reg_param = reg_param
        self.convergence_tol = convergence_tol
        self.max_line_search_steps = max_line_search_steps
        self.aggregation = aggregation
        self.spec = spec_with_legacy(spec, "LBFGS", parallelism=parallelism)
        self.size_scale = size_scale
        self.sample_scale = sample_scale
        self.flop_time = flop_time

    @property
    def parallelism(self) -> int:
        return self.spec.parallelism

    # -------------------------------------------------------------- internals
    def _loss_and_gradient(self, data: RDD, weights: np.ndarray
                           ) -> Tuple[float, np.ndarray]:
        """One distributed pass: regularized mean loss and gradient."""
        sc = data.sc
        dim = weights.size
        bc = sc.broadcast(ScaledPayloadValue(
            weights, dim * 8.0 * self.size_scale))
        gradient = self.gradient
        sample_cost = nnz_sample_cost(gradient, self.sample_scale,
                                      self.flop_time)

        def fold(agg: FlatAggregator, point: LabeledPoint) -> FlatAggregator:
            loss = gradient.add_to(point, bc.value.value, agg.payload)
            agg.add_stats(loss, 1.0)
            return agg

        seq_op = Costed(fold, sample_cost)
        merge = Costed(lambda a, b: a.merge(b), 0.0)
        size_scale = self.size_scale
        zero = lambda: FlatAggregator(dim, size_scale)  # noqa: E731
        if self.aggregation == "split":
            agg = split_aggregate(data, zero, seq_op, split_op, reduce_op,
                                  concat_op, self.spec, merge_op=merge)
        else:
            agg = tree_aggregate(data, zero, seq_op, merge,
                                 imm=(self.aggregation == "tree_imm"))
        bc.destroy()
        count = agg.weight_sum
        if count <= 0:
            raise ValueError("no samples in the dataset")
        grad = agg.payload / count
        loss = agg.loss_sum / count
        if self.reg_param > 0:
            loss += 0.5 * self.reg_param * float(weights @ weights)
            grad = grad + self.reg_param * weights
        return loss, grad

    def _direction(self, grad: np.ndarray,
                   pairs: Deque[Tuple[np.ndarray, np.ndarray]]
                   ) -> np.ndarray:
        """Two-loop recursion: approximate -H^{-1} grad."""
        q = grad.copy()
        alphas: List[float] = []
        rhos: List[float] = []
        for s, y in reversed(pairs):
            rho = 1.0 / float(y @ s)
            alpha = rho * float(s @ q)
            q -= alpha * y
            alphas.append(alpha)
            rhos.append(rho)
        if pairs:
            s, y = pairs[-1]
            q *= float(s @ y) / float(y @ y)  # initial Hessian scaling
        for (s, y), alpha, rho in zip(pairs, reversed(alphas),
                                      reversed(rhos)):
            beta = rho * float(y @ q)
            q += (alpha - beta) * s
        return -q

    # ---------------------------------------------------------------- optimize
    def optimize(self, data: RDD, initial_weights: np.ndarray
                 ) -> Tuple[np.ndarray, List[float]]:
        """Run L-BFGS; returns final weights and per-iteration losses."""
        sc = data.sc
        weights = np.asarray(initial_weights, dtype=np.float64).copy()
        dim = weights.size
        pairs: Deque[Tuple[np.ndarray, np.ndarray]] = deque(
            maxlen=self.history)
        losses: List[float] = []

        loss, grad = self._loss_and_gradient(data, weights)
        losses.append(loss)
        for _iteration in range(self.max_iterations):
            with sc.stopwatch.span("ml.driver"):
                direction = self._direction(grad, pairs)
                # Two-loop recursion: ~4*history passes over the weight
                # vector.
                drv = (4 * max(len(pairs), 1) * dim * 8.0 * self.size_scale
                       / sc.cluster.config.merge_bandwidth)
                proc = sc.env.process(sc.driver_work(drv))
                sc.env.run(until=proc)

            descent = float(grad @ direction)
            if descent >= 0:  # not a descent direction: restart memory
                pairs.clear()
                direction = -grad
                descent = -float(grad @ grad)

            # Backtracking (Armijo) line search; each probe is one
            # distributed loss/gradient pass.
            step = 1.0
            for _probe in range(self.max_line_search_steps):
                candidate = weights + step * direction
                new_loss, new_grad = self._loss_and_gradient(data, candidate)
                if new_loss <= loss + 1e-4 * step * descent:
                    break
                step *= 0.5
            else:
                losses.append(new_loss)
                break  # line search failed: accept last probe and stop

            s = candidate - weights
            y = new_grad - grad
            if float(y @ s) > 1e-12:  # curvature condition
                pairs.append((s, y))
            improvement = abs(loss - new_loss) / max(abs(loss), 1e-12)
            weights, loss, grad = candidate, new_loss, new_grad
            losses.append(loss)
            if improvement < self.convergence_tol:
                break
        return weights, losses
