"""Online variational LDA (Hoffman et al.; MLlib's default optimizer).

Where the EM trainer (:class:`~repro.ml.lda.LDA`) aggregates expected
counts over the *whole* corpus each iteration, online LDA samples a
mini-batch, aggregates the same ``K x V`` sufficient statistics over it,
and blends them into the variational topic parameters with a decaying
weight ``rho_t = (tau0 + t)^(-kappa)``. The aggregator is identical in
shape and size to EM's — so the paper's aggregation trade-off applies to
both MLlib LDA optimizers, just at mini-batch frequency.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from numpy.random import default_rng
from scipy.special import digamma

from ..core.aggregation import tree_aggregate
from ..core.sai import split_aggregate
from ..core.spec import AggregationSpec, spec_with_legacy, warn_deprecated_kwarg
from ..rdd.costing import Costed
from ..rdd.rdd import RDD
from .aggregators import FlatAggregator, concat_op, reduce_op, split_op
from .lda import LDA_TOKEN_TIME, LDAModel, _E_STEP_SWEEPS
from .linalg import SparseVector
from .optimization import AGGREGATION_MODES, ScaledPayloadValue

__all__ = ["OnlineLDA"]


class OnlineLDA:
    """Mini-batch variational Bayes for LDA over the simulated engine."""

    def __init__(self, k: int = 10, num_iterations: int = 20,
                 mini_batch_fraction: float = 0.25,
                 doc_concentration: float = 0.1,
                 topic_concentration: float = 0.01,
                 tau0: float = 1.0, kappa: float = 0.51,
                 aggregation: str = "tree",
                 spec: Optional[AggregationSpec] = None,
                 size_scale: float = 1.0, sample_scale: float = 1.0,
                 token_time: float = LDA_TOKEN_TIME, seed: int = 7, *,
                 parallelism: Optional[int] = None):
        if aggregation not in AGGREGATION_MODES:
            raise ValueError(
                f"aggregation must be one of {AGGREGATION_MODES}, "
                f"got {aggregation!r}")
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        if not 0.0 < mini_batch_fraction <= 1.0:
            raise ValueError(
                f"mini_batch_fraction in (0, 1]: {mini_batch_fraction}")
        if kappa < 0.5 or kappa > 1.0:
            raise ValueError(
                f"kappa in [0.5, 1] required for convergence: {kappa}")
        if isinstance(spec, int):
            # the pre-spec signature's positional parallelism
            warn_deprecated_kwarg("parallelism", "OnlineLDA", stacklevel=3)
            spec = AggregationSpec(parallelism=spec)
        self.k = k
        self.num_iterations = num_iterations
        self.mini_batch_fraction = mini_batch_fraction
        self.doc_concentration = doc_concentration
        self.topic_concentration = topic_concentration
        self.tau0 = tau0
        self.kappa = kappa
        self.aggregation = aggregation
        self.spec = spec_with_legacy(spec, "OnlineLDA",
                                     parallelism=parallelism)
        self.size_scale = size_scale
        self.sample_scale = sample_scale
        self.token_time = token_time
        self.seed = seed

    @property
    def parallelism(self) -> int:
        return self.spec.parallelism

    def fit(self, corpus: RDD, vocab_size: int) -> LDAModel:
        """Train on an RDD of word-count :class:`SparseVector` docs."""
        if vocab_size < 1:
            raise ValueError(f"vocab_size must be >= 1: {vocab_size}")
        sc = corpus.sc
        k, vocab = self.k, vocab_size
        corpus_size = corpus.count()
        if corpus_size == 0:
            raise ValueError("cannot fit on an empty corpus")
        rng = default_rng(self.seed)
        # Variational topic parameters lambda (K x V), gamma-distributed
        # initialization as in Hoffman et al.
        lam = rng.gamma(100.0, 1.0 / 100.0, (k, vocab))
        alpha = self.doc_concentration
        eta = self.topic_concentration
        per_token = self.token_time * self.sample_scale
        log_likelihoods: List[float] = []

        for iteration in range(1, self.num_iterations + 1):
            # Expected log beta under the current variational posterior.
            e_log_beta = digamma(lam) - digamma(
                lam.sum(axis=1, keepdims=True))
            exp_e_log_beta = np.exp(e_log_beta)

            with sc.stopwatch.span("ml.broadcast"):
                bc = sc.broadcast(ScaledPayloadValue(
                    exp_e_log_beta, k * vocab * 8.0 * self.size_scale))

            batch = (corpus if self.mini_batch_fraction >= 1.0
                     else corpus.sample(self.mini_batch_fraction,
                                        seed=self.seed + iteration))

            def fold(agg: FlatAggregator, doc: SparseVector
                     ) -> FlatAggregator:
                if doc.nnz == 0:
                    return agg
                stats = agg.payload.reshape(k, vocab)
                beta_w = bc.value.value[:, doc.indices]
                gamma = np.ones(k)
                phi = beta_w.copy()
                for _ in range(_E_STEP_SWEEPS):
                    phi = beta_w * gamma[:, None]
                    phi /= phi.sum(axis=0, keepdims=True) + 1e-100
                    gamma = alpha + phi @ doc.values
                stats[:, doc.indices] += phi * doc.values
                theta = gamma / gamma.sum()
                word_prob = theta @ beta_w + 1e-100
                agg.add_stats(float(doc.values @ np.log(word_prob)), 1.0)
                return agg

            seq_op = Costed(
                fold, lambda _a, d: k * d.nnz * per_token)
            merge = Costed(lambda a, b: a.merge(b), 0.0)
            size_scale = self.size_scale
            zero = lambda: FlatAggregator(k * vocab, size_scale)  # noqa: E731

            if self.aggregation == "split":
                agg = split_aggregate(
                    batch, zero, seq_op, split_op, reduce_op, concat_op,
                    self.spec, merge_op=merge)
            else:
                agg = tree_aggregate(
                    batch, zero, seq_op, merge,
                    imm=(self.aggregation == "tree_imm"))
            bc.destroy()
            batch_docs = agg.weight_sum
            if batch_docs == 0:
                continue  # empty mini-batch: skip the update

            # --- driver update: natural-gradient step on lambda ----------
            with sc.stopwatch.span("ml.driver"):
                stats = agg.payload.reshape(k, vocab)
                rho = (self.tau0 + iteration) ** (-self.kappa)
                lam_hat = eta + (corpus_size / batch_docs) * stats
                lam = (1.0 - rho) * lam + rho * lam_hat
                log_likelihoods.append(
                    agg.loss_sum * corpus_size / batch_docs)
                driver_seconds = (20.0 * k * vocab * 8.0 * self.size_scale
                                  / sc.cluster.config.merge_bandwidth)
                proc = sc.env.process(sc.driver_work(driver_seconds))
                sc.env.run(until=proc)

        topics = lam / lam.sum(axis=1, keepdims=True)
        return LDAModel(topics, log_likelihoods, alpha, eta)
