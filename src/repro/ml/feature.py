"""Feature preprocessing: StandardScaler over distributed statistics.

MLlib standardizes features before training linear models; computing the
per-feature mean and variance is itself a global aggregation of two dense
``dim``-sized arrays — structurally the exact ``Agg{sum1, sum2}`` example
of the paper's Figure 7. The scaler therefore runs through the same
tree/split aggregation backends as training, making it both a realistic
preprocessing stage and a second production consumer of the SAI.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.aggregation import tree_aggregate
from ..core.sai import split_aggregate
from ..core.spec import AggregationSpec, spec_with_legacy, warn_deprecated_kwarg
from ..rdd.costing import Costed
from ..rdd.rdd import RDD
from .aggregators import FlatAggregator, concat_op, reduce_op, split_op
from .linalg import LabeledPoint, SparseVector
from .optimization import AGGREGATION_MODES, JVM_FLOP_TIME

__all__ = ["StandardScaler", "StandardScalerModel"]


class StandardScalerModel:
    """Fitted per-feature statistics; transforms sparse vectors.

    Only scaling by the standard deviation is applied to sparse data
    (centering would densify it — the same choice MLlib makes when
    ``withMean=False``).
    """

    def __init__(self, mean: np.ndarray, variance: np.ndarray,
                 count: float):
        self.mean = mean
        self.variance = variance
        self.count = count
        std = np.sqrt(variance)
        # Features with no variance pass through unscaled.
        self._inv_std = np.where(std > 0, 1.0 / np.maximum(std, 1e-300),
                                 1.0)

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.variance)

    def transform(self, features: SparseVector) -> SparseVector:
        """Scale a sparse vector's non-zeros by 1/std."""
        return SparseVector(
            features.size, features.indices,
            features.values * self._inv_std[features.indices])

    def transform_point(self, point: LabeledPoint) -> LabeledPoint:
        return LabeledPoint(point.label, self.transform(point.features))

    def transform_rdd(self, data: RDD) -> RDD:
        """Scale an RDD of :class:`LabeledPoint` (lazy, per-element)."""
        model = self
        return data.map(lambda p: model.transform_point(p))


class StandardScaler:
    """Fits per-feature mean/variance with one distributed aggregation."""

    def __init__(self, aggregation: str = "tree",
                 spec: Optional[AggregationSpec] = None,
                 size_scale: float = 1.0, sample_scale: float = 1.0,
                 flop_time: float = JVM_FLOP_TIME, *,
                 parallelism: Optional[int] = None):
        if aggregation not in AGGREGATION_MODES:
            raise ValueError(
                f"aggregation must be one of {AGGREGATION_MODES}, "
                f"got {aggregation!r}")
        if isinstance(spec, int):
            # the pre-spec signature's positional parallelism
            warn_deprecated_kwarg("parallelism", "StandardScaler",
                                  stacklevel=3)
            spec = AggregationSpec(parallelism=spec)
        self.aggregation = aggregation
        self.spec = spec_with_legacy(spec, "StandardScaler",
                                     parallelism=parallelism)
        self.size_scale = size_scale
        self.sample_scale = sample_scale
        self.flop_time = flop_time

    @property
    def parallelism(self) -> int:
        return self.spec.parallelism

    def fit(self, data: RDD, num_features: int) -> StandardScalerModel:
        """One pass: aggregate sum and sum-of-squares per feature.

        The aggregator payload is ``[sums..., sums_of_squares...]`` — two
        arrays in one flat buffer, Figure 7's shape.
        """
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1: {num_features}")
        dim = num_features
        per_nnz = 3.0 * self.flop_time * self.sample_scale

        def fold(agg: FlatAggregator, point: LabeledPoint
                 ) -> FlatAggregator:
            features = point.features
            sums = agg.payload[:dim]
            squares = agg.payload[dim:]
            features.add_to(sums)
            np.add.at(squares, features.indices, features.values ** 2)
            agg.add_stats(0.0, 1.0)
            return agg

        seq_op = Costed(
            fold, lambda _agg, p: p.features.nnz * per_nnz)
        merge = Costed(lambda a, b: a.merge(b), 0.0)
        size_scale = self.size_scale
        zero = lambda: FlatAggregator(2 * dim, size_scale)  # noqa: E731

        if self.aggregation == "split":
            agg = split_aggregate(data, zero, seq_op, split_op, reduce_op,
                                  concat_op, self.spec, merge_op=merge)
        else:
            agg = tree_aggregate(data, zero, seq_op, merge,
                                 imm=(self.aggregation == "tree_imm"))
        count = agg.weight_sum
        if count <= 0:
            raise ValueError("cannot fit a scaler on an empty dataset")
        sums = agg.payload[:dim]
        squares = agg.payload[dim:]
        mean = sums / count
        # Unbiased sample variance, clamped against rounding negatives.
        if count > 1:
            variance = np.maximum(
                (squares - count * mean ** 2) / (count - 1), 0.0)
        else:
            variance = np.zeros(dim)
        return StandardScalerModel(mean, variance, count)
