"""Loss gradients (MLlib's ``Gradient`` hierarchy).

Each gradient computes, for one labeled sample and the current weights, the
sample's loss and its additive contribution to the gradient sum — written
*in place* into the aggregator's payload buffer, the hot path MLlib also
optimizes (``axpy`` into the shared gradient array).

Labels follow MLlib conventions: binary classifiers take labels in
``{0, 1}`` and internally map to ``{-1, +1}`` where needed.
"""

from __future__ import annotations

import math

import numpy as np

from .linalg import LabeledPoint

__all__ = ["Gradient", "LogisticGradient", "HingeGradient",
           "LeastSquaresGradient"]


class Gradient:
    """Computes per-sample loss and in-place gradient contributions."""

    def add_to(self, point: LabeledPoint, weights: np.ndarray,
               grad_sum: np.ndarray) -> float:
        """Accumulate this sample's gradient into ``grad_sum``; return loss."""
        raise NotImplementedError  # pragma: no cover - abstract

    #: floating ops per non-zero (dot + axpy), for the compute cost model
    flops_per_nnz: float = 4.0


class LogisticGradient(Gradient):
    """Binary logistic loss: ``log(1 + exp(-y * w.x))`` with y in {-1,+1}."""

    def add_to(self, point: LabeledPoint, weights: np.ndarray,
               grad_sum: np.ndarray) -> float:
        # MLlib's formulation: margin = -w.x;
        # multiplier = 1/(1 + exp(margin)) - label = sigma(w.x) - label.
        margin = -point.features.dot(weights)
        multiplier = (1.0 / (1.0 + math.exp(min(margin, 500.0)))
                      - point.label)
        point.features.add_to(grad_sum, multiplier)
        # loss = log(1 + exp(margin))           for label 1
        #      = log(1 + exp(margin)) - margin  for label 0
        # computed stably for large |margin|.
        if margin > 0:
            log1p_exp = margin + math.log1p(math.exp(-margin))
        else:
            log1p_exp = math.log1p(math.exp(margin))
        return log1p_exp if point.label > 0 else log1p_exp - margin


class HingeGradient(Gradient):
    """SVM hinge loss: ``max(0, 1 - y * w.x)`` with y in {-1,+1}."""

    def add_to(self, point: LabeledPoint, weights: np.ndarray,
               grad_sum: np.ndarray) -> float:
        y = 2.0 * point.label - 1.0  # {0,1} -> {-1,+1}
        dot = point.features.dot(weights)
        if 1.0 - y * dot > 0:
            point.features.add_to(grad_sum, -y)
            return 1.0 - y * dot
        return 0.0


class LeastSquaresGradient(Gradient):
    """Squared loss for linear regression: ``(w.x - y)^2 / 2``."""

    def add_to(self, point: LabeledPoint, weights: np.ndarray,
               grad_sum: np.ndarray) -> float:
        diff = point.features.dot(weights) - point.label
        point.features.add_to(grad_sum, diff)
        return 0.5 * diff * diff
