"""Weight updaters (MLlib's ``Updater`` hierarchy).

An updater applies one gradient step at the driver::

    new_weights, reg_loss = updater.compute(weights, gradient, step_size,
                                            iteration, reg_param)

The step-size schedule matches MLlib's GradientDescent:
``step_size / sqrt(iteration)``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = ["Updater", "SimpleUpdater", "SquaredL2Updater"]


class Updater:
    """Applies one (possibly regularized) gradient step."""

    def compute(self, weights: np.ndarray, gradient: np.ndarray,
                step_size: float, iteration: int,
                reg_param: float) -> Tuple[np.ndarray, float]:
        raise NotImplementedError  # pragma: no cover - abstract

    @staticmethod
    def _step(step_size: float, iteration: int) -> float:
        if iteration < 1:
            raise ValueError(f"iteration must be >= 1, got {iteration}")
        return step_size / math.sqrt(iteration)


class SimpleUpdater(Updater):
    """Unregularized step: ``w -= (step/sqrt(t)) * g``."""

    def compute(self, weights: np.ndarray, gradient: np.ndarray,
                step_size: float, iteration: int,
                reg_param: float) -> Tuple[np.ndarray, float]:
        this_step = self._step(step_size, iteration)
        return weights - this_step * gradient, 0.0


class SquaredL2Updater(Updater):
    """L2 regularization: ``w = w(1 - step*reg) - step*g``; reg loss
    ``reg/2 * ||w||^2`` (evaluated at the new weights, like MLlib)."""

    def compute(self, weights: np.ndarray, gradient: np.ndarray,
                step_size: float, iteration: int,
                reg_param: float) -> Tuple[np.ndarray, float]:
        this_step = self._step(step_size, iteration)
        new_weights = weights * (1.0 - this_step * reg_param) \
            - this_step * gradient
        norm_sq = float(new_weights @ new_weights)
        return new_weights, 0.5 * reg_param * norm_sq
