"""Latent Dirichlet Allocation by distributed EM (MLlib-style, K=100 in
Table 3).

Each EM iteration broadcasts the topic-word matrix, runs a per-document
E-step (fixed-point updates of the document-topic mixture), and globally
aggregates the expected topic-word counts — a dense ``K x V`` matrix, which
is why the LDA workloads have the paper's largest aggregators (nytimes:
100 x 102,660 doubles ≈ 82 MB) and benefit most from split aggregation.
The driver's M-step renormalizes the counts into the new topic-word matrix
(the "Driver" slice that §6 identifies as the next bottleneck).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.aggregation import tree_aggregate
from ..core.sai import split_aggregate
from ..core.spec import AggregationSpec, spec_with_legacy, warn_deprecated_kwarg
from ..rdd.costing import Costed
from ..rdd.rdd import RDD
from .aggregators import FlatAggregator, concat_op, reduce_op, split_op
from .linalg import SparseVector
from .optimization import AGGREGATION_MODES, ScaledPayloadValue

__all__ = ["LDA", "LDAModel", "LDA_TOKEN_TIME"]

#: effective seconds per (topic, word) cell visited in the E-step on one
#: paper-grade core (a few fixed-point sweeps' worth of flops)
LDA_TOKEN_TIME = 1.0e-7

#: fixed-point sweeps per document in the E-step
_E_STEP_SWEEPS = 5


class LDAModel:
    """A fitted topic model."""

    def __init__(self, topics: np.ndarray, log_likelihoods: List[float],
                 doc_concentration: float, topic_concentration: float):
        #: row-stochastic ``K x V`` topic-word distribution
        self.topics = topics
        #: corpus log-likelihood per iteration (should be non-decreasing)
        self.log_likelihoods = list(log_likelihoods)
        self.doc_concentration = doc_concentration
        self.topic_concentration = topic_concentration

    @property
    def k(self) -> int:
        return self.topics.shape[0]

    @property
    def vocab_size(self) -> int:
        return self.topics.shape[1]

    def describe_topics(self, max_terms: int = 10) -> List[List[int]]:
        """Top ``max_terms`` word indices per topic."""
        order = np.argsort(-self.topics, axis=1)
        return [list(map(int, order[k, :max_terms])) for k in range(self.k)]

    def infer(self, doc: SparseVector, sweeps: int = _E_STEP_SWEEPS
              ) -> np.ndarray:
        """Posterior topic mixture for one document."""
        gamma = np.ones(self.k)
        beta_w = self.topics[:, doc.indices]  # K x nnz
        for _ in range(sweeps):
            phi = beta_w * gamma[:, None]
            phi /= phi.sum(axis=0, keepdims=True) + 1e-100
            gamma = self.doc_concentration + phi @ doc.values
        return gamma / gamma.sum()


class LDA:
    """EM trainer for LDA over an RDD of word-count vectors."""

    def __init__(self, k: int = 10, num_iterations: int = 10,
                 doc_concentration: float = 0.1,
                 topic_concentration: float = 0.01,
                 aggregation: str = "tree",
                 spec: Optional[AggregationSpec] = None,
                 size_scale: float = 1.0, sample_scale: float = 1.0,
                 token_time: float = LDA_TOKEN_TIME, seed: int = 7, *,
                 parallelism: Optional[int] = None):
        if aggregation not in AGGREGATION_MODES:
            raise ValueError(
                f"aggregation must be one of {AGGREGATION_MODES}, "
                f"got {aggregation!r}")
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        if num_iterations < 1:
            raise ValueError(f"need at least one iteration: {num_iterations}")
        if isinstance(spec, int):
            # the pre-spec signature's positional parallelism
            warn_deprecated_kwarg("parallelism", "LDA", stacklevel=3)
            spec = AggregationSpec(parallelism=spec)
        self.k = k
        self.num_iterations = num_iterations
        self.doc_concentration = doc_concentration
        self.topic_concentration = topic_concentration
        self.aggregation = aggregation
        self.spec = spec_with_legacy(spec, "LDA", parallelism=parallelism)
        self.size_scale = size_scale
        self.sample_scale = sample_scale
        self.token_time = token_time
        self.seed = seed

    @property
    def parallelism(self) -> int:
        return self.spec.parallelism

    # ------------------------------------------------------------------- fit
    def fit(self, corpus: RDD, vocab_size: int) -> LDAModel:
        """Train on an RDD of :class:`SparseVector` word-count vectors."""
        if vocab_size < 1:
            raise ValueError(f"vocab_size must be >= 1: {vocab_size}")
        sc = corpus.sc
        k, vocab = self.k, vocab_size
        rng = np.random.default_rng(self.seed)
        beta = rng.random((k, vocab)) + 0.01
        beta /= beta.sum(axis=1, keepdims=True)
        alpha = self.doc_concentration
        eta = self.topic_concentration
        log_likelihoods: List[float] = []

        per_token = self.token_time * self.sample_scale

        for _iteration in range(1, self.num_iterations + 1):
            with sc.stopwatch.span("ml.broadcast"):
                bc = sc.broadcast(ScaledPayloadValue(
                    beta, k * vocab * 8.0 * self.size_scale))

            def fold(agg: FlatAggregator, doc: SparseVector
                     ) -> FlatAggregator:
                if doc.nnz == 0:
                    return agg
                counts = agg.payload.reshape(k, vocab)
                beta_now = bc.value.value
                beta_w = beta_now[:, doc.indices]  # K x nnz
                gamma = np.ones(k)
                phi = beta_w.copy()
                for _ in range(_E_STEP_SWEEPS):
                    phi = beta_w * gamma[:, None]
                    phi /= phi.sum(axis=0, keepdims=True) + 1e-100
                    gamma = alpha + phi @ doc.values
                counts[:, doc.indices] += phi * doc.values
                theta = gamma / gamma.sum()
                word_prob = theta @ beta_w + 1e-100
                agg.add_stats(float(doc.values @ np.log(word_prob)), 1.0)
                return agg

            def cost(_agg: FlatAggregator, doc: SparseVector) -> float:
                return k * doc.nnz * per_token

            seq_op = Costed(fold, cost)
            merge = Costed(lambda a, b: a.merge(b), 0.0)
            size_scale = self.size_scale
            zero = lambda: FlatAggregator(k * vocab, size_scale)  # noqa: E731

            if self.aggregation == "split":
                agg = split_aggregate(
                    corpus, zero, seq_op, split_op, reduce_op, concat_op,
                    self.spec, merge_op=merge)
            else:
                agg = tree_aggregate(
                    corpus, zero, seq_op, merge,
                    imm=(self.aggregation == "tree_imm"))
            bc.destroy()

            # --- driver M-step: renormalize counts into the new beta ------
            with sc.stopwatch.span("ml.driver"):
                counts = agg.payload.reshape(k, vocab)
                beta = counts + eta
                beta /= beta.sum(axis=1, keepdims=True)
                log_likelihoods.append(agg.loss_sum)
                # MLlib's EM driver step is many passes over the K x V
                # global parameters (normalization, ELBO terms, Dirichlet
                # updates in Breeze, plus the attendant JVM allocation
                # churn) — modeled as ~20 memory passes. This is the
                # non-scalable "Driver" slice that §6 calls the next
                # bottleneck at 960 cores.
                driver_seconds = (20.0 * k * vocab * 8.0 * self.size_scale
                                  / sc.cluster.config.merge_bandwidth)
                proc = sc.env.process(sc.driver_work(driver_seconds))
                sc.env.run(until=proc)

        return LDAModel(beta, log_likelihoods, alpha, eta)
