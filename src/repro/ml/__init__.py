"""MLlib-like machine learning on the simulated engine.

Implements the three Table 3 models (logistic regression, linear SVM, LDA)
whose training loops drive every end-to-end figure of the paper, with the
aggregation backend (tree / tree+IMM / split) as a configuration switch.
"""

from .aggregators import (
    AggregatorSegment,
    FlatAggregator,
    SparseAccumulator,
    concat_op,
    reduce_op,
    split_op,
)
from .batched import (
    BatchedSeqOp,
    CSRMatrix,
    batched_seq_op,
    clear_csr_cache,
    csr_cache_stats,
    partition_csr,
    supports_batching,
)
from .classification import (
    LinearModel,
    LogisticRegressionModel,
    LogisticRegressionWithSGD,
    SVMModel,
    SVMWithSGD,
)
from .evaluation import BinaryClassificationMetrics, log_perplexity
from .feature import StandardScaler, StandardScalerModel
from .gradient import (
    Gradient,
    HingeGradient,
    LeastSquaresGradient,
    LogisticGradient,
)
from .lbfgs import LBFGS
from .lda import LDA, LDA_TOKEN_TIME, LDAModel
from .online_lda import OnlineLDA
from .linalg import LabeledPoint, SparseVector
from .optimization import (
    AGGREGATION_MODES,
    GradientDescent,
    JVM_FLOP_TIME,
    ScaledPayloadValue,
    nnz_sample_cost,
)
from .regression import LinearRegressionModel, LinearRegressionWithSGD
from .updater import SimpleUpdater, SquaredL2Updater, Updater

__all__ = [
    "SparseVector",
    "LabeledPoint",
    "FlatAggregator",
    "AggregatorSegment",
    "SparseAccumulator",
    "BatchedSeqOp",
    "CSRMatrix",
    "batched_seq_op",
    "partition_csr",
    "csr_cache_stats",
    "clear_csr_cache",
    "supports_batching",
    "split_op",
    "reduce_op",
    "concat_op",
    "Gradient",
    "LogisticGradient",
    "HingeGradient",
    "LeastSquaresGradient",
    "Updater",
    "SimpleUpdater",
    "SquaredL2Updater",
    "GradientDescent",
    "AGGREGATION_MODES",
    "JVM_FLOP_TIME",
    "nnz_sample_cost",
    "ScaledPayloadValue",
    "LinearModel",
    "LogisticRegressionModel",
    "SVMModel",
    "LogisticRegressionWithSGD",
    "SVMWithSGD",
    "LDA",
    "LDAModel",
    "LDA_TOKEN_TIME",
    "BinaryClassificationMetrics",
    "log_perplexity",
    "LinearRegressionModel",
    "LinearRegressionWithSGD",
    "LBFGS",
    "OnlineLDA",
    "StandardScaler",
    "StandardScalerModel",
]
