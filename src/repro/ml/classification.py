"""Linear classifiers: logistic regression and linear SVM (MLlib-style).

Table 3 of the paper: Logistic Regression (``regParam=0``,
``elasticNetParam=0``) and SVM (``miniBatchFraction=1.0``,
``regParam=0.01``), both trained by distributed gradient descent whose
per-iteration global sum runs through the selected aggregation backend.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.spec import AggregationSpec, spec_with_legacy, warn_deprecated_kwarg
from ..rdd.rdd import RDD
from .gradient import HingeGradient, LogisticGradient
from .linalg import LabeledPoint, SparseVector
from .optimization import JVM_FLOP_TIME, GradientDescent
from .updater import SimpleUpdater, SquaredL2Updater

__all__ = [
    "LinearModel",
    "LogisticRegressionModel",
    "SVMModel",
    "LogisticRegressionWithSGD",
    "SVMWithSGD",
]


class LinearModel:
    """A trained linear decision function ``margin(x) = w . x``."""

    def __init__(self, weights: np.ndarray, losses: List[float]):
        self.weights = np.asarray(weights, dtype=np.float64)
        #: training loss per iteration
        self.losses = list(losses)

    def margin(self, features: SparseVector) -> float:
        return features.dot(self.weights)

    def predict(self, features: SparseVector) -> float:
        """Predicted class label in {0, 1}."""
        return 1.0 if self.margin(features) > 0 else 0.0

    def accuracy(self, points: List[LabeledPoint]) -> float:
        """Fraction of correctly classified points."""
        if not points:
            raise ValueError("accuracy() of an empty sample")
        hits = sum(1 for p in points if self.predict(p.features) == p.label)
        return hits / len(points)


class LogisticRegressionModel(LinearModel):
    """Adds calibrated probabilities on top of the linear margin."""

    def predict_probability(self, features: SparseVector) -> float:
        return 1.0 / (1.0 + np.exp(-self.margin(features)))


class SVMModel(LinearModel):
    pass


class _SGDTrainer:
    """Shared train() plumbing for the two linear models."""

    gradient_cls = None
    model_cls = LinearModel
    default_updater = SimpleUpdater

    @classmethod
    def train(cls, data: RDD, num_features: int,
              num_iterations: int = 10, step_size: float = 1.0,
              reg_param: float = 0.0, mini_batch_fraction: float = 1.0,
              aggregation: str = "tree",
              spec: Optional[AggregationSpec] = None,
              size_scale: float = 1.0, sample_scale: float = 1.0,
              flop_time: float = JVM_FLOP_TIME,
              initial_weights: Optional[np.ndarray] = None,
              convergence_tol: float = 0.0, *,
              parallelism: Optional[int] = None,
              sparse_aggregation: Optional[bool] = None,
              sparse_policy=None,
              batched: Optional[bool] = None) -> LinearModel:
        """Train on an RDD of :class:`LabeledPoint`.

        ``aggregation`` selects the backend: ``"tree"`` (vanilla Spark),
        ``"tree_imm"`` or ``"split"`` (Sparker) — the paper's §3.1
        configuration switch. ``spec`` carries every reduction knob
        (collective algorithm or ``"auto"``, parallelism, the
        density-adaptive sparse payload, the per-partition CSR ``batched``
        kernel); the ``parallelism`` / ``sparse_aggregation`` /
        ``sparse_policy`` / ``batched`` keywords are deprecated shims
        mapping onto it.
        """
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1: {num_features}")
        if isinstance(spec, int):
            # the pre-spec signature's positional parallelism
            warn_deprecated_kwarg("parallelism", f"{cls.__name__}.train",
                                  stacklevel=3)
            spec = AggregationSpec(parallelism=spec)
        spec = spec_with_legacy(
            spec, f"{cls.__name__}.train",
            parallelism=parallelism, sparse_aggregation=sparse_aggregation,
            sparse_policy=sparse_policy, batched=batched)
        updater = (SquaredL2Updater() if reg_param > 0
                   else cls.default_updater())
        optimizer = GradientDescent(
            gradient=cls.gradient_cls(),  # type: ignore[misc]
            updater=updater,
            step_size=step_size,
            num_iterations=num_iterations,
            reg_param=reg_param,
            mini_batch_fraction=mini_batch_fraction,
            aggregation=aggregation,
            spec=spec,
            size_scale=size_scale,
            sample_scale=sample_scale,
            flop_time=flop_time,
            convergence_tol=convergence_tol,
        )
        w0 = (np.zeros(num_features) if initial_weights is None
              else np.asarray(initial_weights, dtype=np.float64))
        if w0.size != num_features:
            raise ValueError(
                f"initial weights have {w0.size} features, expected "
                f"{num_features}")
        weights, losses = optimizer.optimize(data, w0)
        return cls.model_cls(weights, losses)


class LogisticRegressionWithSGD(_SGDTrainer):
    """Table 3's LR: logistic loss, no regularization by default."""

    gradient_cls = LogisticGradient
    model_cls = LogisticRegressionModel


class SVMWithSGD(_SGDTrainer):
    """Table 3's SVM: hinge loss, ``regParam=0.01``, full batches."""

    gradient_cls = HingeGradient
    model_cls = SVMModel
