"""Model aggregators mirroring the paper's Figure 7 (``Agg`` / ``AggSeg``).

MLlib's ``RDDLossFunction`` folds samples into an aggregator object holding
dense arrays (gradient sum + loss statistics). Figure 7 distils that into
an abstract ``Agg`` (constructed by ``seqOp``, knows how to ``add`` a
sample) and a merge-only ``AggSeg`` segment type, with ``splitA``/``concatA``
slicing the underlying arrays.

Here the aggregator state is one flat ``float64`` buffer::

    [ payload (model-specific) ..., loss_sum, weight_sum ]

so that splitting, merging, and concatenation are plain array slices and
sums — exactly the structure split aggregation exploits. The buffer carries
a *simulated* size (``dim_logical * 8`` bytes) so communication is costed
at paper-scale aggregator sizes even when the surrogate dimensionality is
laptop-sized (DESIGN.md §2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..serde import segment_range

__all__ = ["FlatAggregator", "AggregatorSegment",
           "split_op", "reduce_op", "concat_op"]

#: trailing statistics slots in every aggregator buffer
_STATS_SLOTS = 2


class AggregatorSegment:
    """``AggSeg`` of Figure 7: a merge-only slice of an aggregator buffer."""

    __slots__ = ("buf", "sim_bytes")

    def __init__(self, buf: np.ndarray, sim_bytes: float):
        self.buf = np.asarray(buf, dtype=np.float64)
        self.sim_bytes = float(sim_bytes)
        if self.sim_bytes < 0:
            raise ValueError(f"negative simulated size: {sim_bytes}")

    def __sim_size__(self) -> float:
        return self.sim_bytes

    def merge(self, other: "AggregatorSegment") -> "AggregatorSegment":
        """Element-wise sum (both of Figure 7's ``merge`` methods)."""
        if other.buf.shape != self.buf.shape:
            raise ValueError(
                f"segment shape mismatch: {self.buf.shape} vs "
                f"{other.buf.shape}")
        return AggregatorSegment(self.buf + other.buf,
                                 max(self.sim_bytes, other.sim_bytes))

    def __len__(self) -> int:
        return int(self.buf.size)

    def __repr__(self) -> str:
        return (f"<AggregatorSegment n={self.buf.size} "
                f"sim={self.sim_bytes:.0f}B>")


class FlatAggregator:
    """``Agg`` of Figure 7: a sample-foldable aggregator over a flat buffer.

    Parameters
    ----------
    payload_size:
        Physical length of the model-specific payload (e.g. the gradient
        dimension, or K*V for LDA).
    size_scale:
        Ratio of the paper-scale aggregator size to the surrogate size;
        the simulated byte size of the aggregator is
        ``(payload_size + 2) * 8 * size_scale``.
    """

    __slots__ = ("buf", "payload_size", "size_scale")

    def __init__(self, payload_size: int, size_scale: float = 1.0,
                 buf: np.ndarray | None = None):
        if payload_size < 0:
            raise ValueError(f"negative payload size: {payload_size}")
        if size_scale <= 0:
            raise ValueError(f"size_scale must be positive: {size_scale}")
        self.payload_size = int(payload_size)
        self.size_scale = float(size_scale)
        if buf is None:
            self.buf = np.zeros(payload_size + _STATS_SLOTS)
        else:
            buf = np.asarray(buf, dtype=np.float64)
            if buf.size != payload_size + _STATS_SLOTS:
                raise ValueError(
                    f"buffer length {buf.size} != payload {payload_size} "
                    f"+ {_STATS_SLOTS}")
            self.buf = buf

    # ----------------------------------------------------------------- views
    @property
    def payload(self) -> np.ndarray:
        """The model-specific array (a view: in-place updates intended)."""
        return self.buf[:self.payload_size]

    @property
    def loss_sum(self) -> float:
        return float(self.buf[-2])

    @property
    def weight_sum(self) -> float:
        return float(self.buf[-1])

    def add_stats(self, loss: float, weight: float = 1.0) -> None:
        self.buf[-2] += loss
        self.buf[-1] += weight

    def __sim_size__(self) -> float:
        return self.buf.size * 8.0 * self.size_scale

    # ------------------------------------------------------------ operations
    def merge(self, other: "FlatAggregator") -> "FlatAggregator":
        """In-place element-wise sum; returns self (MLlib merge style)."""
        if other.buf.size != self.buf.size:
            raise ValueError(
                f"aggregator size mismatch: {self.buf.size} vs "
                f"{other.buf.size}")
        self.buf += other.buf
        return self

    def copy(self) -> "FlatAggregator":
        return FlatAggregator(self.payload_size, self.size_scale,
                              self.buf.copy())

    def split(self, index: int, num_segments: int) -> AggregatorSegment:
        """``splitOp``: contiguous segment ``index`` of ``num_segments``."""
        lo, hi = segment_range(self.buf.size, num_segments, index)
        frac = (hi - lo) / self.buf.size if self.buf.size else 0.0
        return AggregatorSegment(self.buf[lo:hi],
                                 self.__sim_size__() * frac)

    @staticmethod
    def concat(segments: Sequence[AggregatorSegment],
               size_scale: float = 1.0) -> "FlatAggregator":
        """``concatOp``: reassemble segments into a full aggregator."""
        if not segments:
            raise ValueError("cannot concatenate zero segments")
        buf = np.concatenate([s.buf for s in segments])
        return FlatAggregator(buf.size - _STATS_SLOTS, size_scale, buf)

    def __repr__(self) -> str:
        return (f"<FlatAggregator payload={self.payload_size} "
                f"loss={self.loss_sum:.4g} weight={self.weight_sum:g}>")


# Module-level SAI callbacks (Figure 6 signatures) for FlatAggregator.
def split_op(agg: FlatAggregator, index: int,
             num_segments: int) -> AggregatorSegment:
    """``splitOp(U, i, n) -> V`` for :class:`FlatAggregator`."""
    return agg.split(index, num_segments)


def reduce_op(a: AggregatorSegment, b: AggregatorSegment) -> AggregatorSegment:
    """``reduceOp(V, V) -> V``: element-wise segment sum."""
    return a.merge(b)


def concat_op(segments: Sequence[AggregatorSegment]) -> FlatAggregator:
    """``concatOp(Seq[V]) -> V`` (reassembled as a full aggregator)."""
    if not segments:
        raise ValueError("cannot concatenate zero segments")
    physical = sum(len(s) for s in segments) * 8.0
    simulated = sum(s.sim_bytes for s in segments)
    scale = simulated / physical if physical > 0 else 1.0
    return FlatAggregator.concat(segments, size_scale=max(scale, 1e-12))
