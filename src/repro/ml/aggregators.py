"""Model aggregators mirroring the paper's Figure 7 (``Agg`` / ``AggSeg``).

MLlib's ``RDDLossFunction`` folds samples into an aggregator object holding
dense arrays (gradient sum + loss statistics). Figure 7 distils that into
an abstract ``Agg`` (constructed by ``seqOp``, knows how to ``add`` a
sample) and a merge-only ``AggSeg`` segment type, with ``splitA``/``concatA``
slicing the underlying arrays.

Here the aggregator state is one flat ``float64`` buffer::

    [ payload (model-specific) ..., loss_sum, weight_sum ]

so that splitting, merging, and concatenation are plain array slices and
sums — exactly the structure split aggregation exploits. The buffer carries
a *simulated* size (``dim_logical * 8`` bytes) so communication is costed
at paper-scale aggregator sizes even when the surrogate dimensionality is
laptop-sized (DESIGN.md §2).

Density-adaptive mode (SparCML / S2-Reducer lineage, DESIGN.md §8): when a
:class:`~repro.serde.SparsePolicy` is attached, the aggregator starts as a
:class:`SparseAccumulator` of (index, value) chunks, densifies in place
once nnz/size crosses the policy threshold, and splits into
:class:`AggregatorSegment` objects that carry their representation so ring
hops and IMM merges can pick sparse-sparse / sparse-dense / dense kernels
and re-evaluate the wire-format switch per send. The adaptive path is
bit-identical to the dense reference (see ``repro.serde.sparse``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.spec import resolve_sparse_policy
from ..serde import (
    SparsePolicy,
    coalesce_chunks,
    densify_sparse,
    merge_sparse,
    scatter_into,
    segment_range,
    slice_sparse,
)

__all__ = ["FlatAggregator", "AggregatorSegment", "SparseAccumulator",
           "split_op", "reduce_op", "concat_op"]

#: trailing statistics slots in every aggregator buffer
_STATS_SLOTS = 2

#: coalesce a sparse accumulator once this many uncoalesced entries pile up
#: (or the policy's densify point, whichever is larger) — bounds memory at
#: O(threshold * size) regardless of how many samples are folded
_COALESCE_MIN = 4096

_EMPTY_IDX = np.empty(0, dtype=np.int64)
_EMPTY_VAL = np.empty(0, dtype=np.float64)


class SparseAccumulator:
    """Chunked sparse accumulation target with in-place densification.

    ``seqOp`` scatters (index, value) contributions with
    :meth:`scatter_add`; chunks are appended without touching the rest of
    the state, coalesced (sorted + deduplicated) once enough entries pile
    up, and replaced by one dense buffer the moment the coalesced nnz
    crosses ``policy.density_threshold * size``. All three states hold
    bit-identical per-index totals to a dense ``np.add.at`` history.
    """

    __slots__ = ("size", "policy", "buf", "_index_chunks", "_value_chunks",
                 "_pending", "_coalesced", "_limit", "version")

    def __init__(self, size: int, policy: SparsePolicy):
        if size < 0:
            raise ValueError(f"negative size: {size}")
        self.size = int(size)
        self.policy = policy
        #: dense buffer once densified, None while sparse
        self.buf: Optional[np.ndarray] = None
        self._index_chunks: list = []
        self._value_chunks: list = []
        self._pending = 0
        self._coalesced = True
        self._limit = max(_COALESCE_MIN,
                          int(policy.density_threshold * size))
        #: mutation counter — bumped whenever stored entries change, so
        #: size estimates keyed on it can be memoized safely
        self.version = 0

    # ------------------------------------------------------------- properties
    @property
    def is_dense(self) -> bool:
        return self.buf is not None

    @property
    def nnz(self) -> int:
        """Stored entries (an upper bound between coalesces)."""
        return self.size if self.buf is not None else self._pending

    @property
    def density(self) -> float:
        return (self.nnz / self.size) if self.size else 1.0

    # ------------------------------------------------------------- operations
    def scatter_add(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Accumulate ``values`` at ``indices`` (duplicates allowed)."""
        self.version += 1
        if self.buf is not None:
            np.add.at(self.buf, indices, values)
            return
        self._index_chunks.append(indices)
        self._value_chunks.append(values)
        self._pending += len(indices)
        self._coalesced = False
        if self._pending >= self._limit:
            self.coalesce()

    def coalesce(self) -> None:
        """Deduplicate pending chunks; densify if over the threshold."""
        if self.buf is not None:
            return
        if not self._coalesced:
            idx, vals = coalesce_chunks(self._index_chunks,
                                        self._value_chunks)
            self._index_chunks = [idx]
            self._value_chunks = [vals]
            self._pending = int(idx.size)
            self._coalesced = True
            self.version += 1
        if self.policy.should_densify(self._pending, self.size):
            self._densify()

    def densify(self) -> None:
        """Switch to the dense representation now, regardless of density."""
        if self.buf is not None:
            return
        self.coalesce()
        if self.buf is None:
            self._densify()

    def _densify(self) -> None:
        self.version += 1
        if self._index_chunks:
            self.buf = densify_sparse(self._index_chunks[0],
                                      self._value_chunks[0], self.size)
        else:
            self.buf = np.zeros(self.size)
        self._index_chunks = []
        self._value_chunks = []
        self._pending = self.size

    def indices_values(self) -> Tuple[np.ndarray, np.ndarray]:
        """Coalesced (indices, values); only valid while sparse."""
        if self.buf is not None:
            raise RuntimeError("accumulator has densified")
        self.coalesce()
        if self.buf is not None:
            raise RuntimeError("accumulator densified during coalesce")
        if not self._index_chunks:
            return _EMPTY_IDX, _EMPTY_VAL
        return self._index_chunks[0], self._value_chunks[0]

    def write_into(self, out: np.ndarray) -> None:
        """Write the accumulated totals into ``out`` (assumed zeroed)."""
        if self.buf is None:
            self.coalesce()
        if self.buf is not None:
            out[:] = self.buf
        elif self._index_chunks:
            out[self._index_chunks[0]] = self._value_chunks[0]

    def merge_accumulator(self, other: "SparseAccumulator") -> None:
        """Fold ``other``'s totals into this accumulator in place."""
        if other.size != self.size:
            raise ValueError(
                f"accumulator size mismatch: {self.size} vs {other.size}")
        self.version += 1
        if other.buf is not None:
            if self.buf is None:
                self.densify()
            self.buf += other.buf
            return
        idx, vals = other.indices_values()
        if idx.size:
            self.scatter_add(idx, vals)

    def copy(self) -> "SparseAccumulator":
        out = SparseAccumulator(self.size, self.policy)
        out.buf = None if self.buf is None else self.buf.copy()
        out._index_chunks = list(self._index_chunks)
        out._value_chunks = list(self._value_chunks)
        out._pending = self._pending
        out._coalesced = self._coalesced
        out.version = self.version
        return out

    def __repr__(self) -> str:
        state = "dense" if self.buf is not None else "sparse"
        return (f"<SparseAccumulator size={self.size} {state} "
                f"nnz~{self.nnz}>")


class AggregatorSegment:
    """``AggSeg`` of Figure 7: a merge-only slice of an aggregator buffer.

    A segment is either *dense* (``buf`` holds the slice) or *sparse*
    (``indices``/``values`` hold coalesced non-zeros over ``length``
    positions); ``sim_bytes`` is always the segment's **dense-equivalent**
    simulated size, while :meth:`__sim_size__` reports the bytes of the
    cheaper wire format — the SparCML switch every send re-evaluates.

    ``owned`` marks buffers this segment may mutate: merge results and
    densified copies are owned, slices of a live aggregator are not, so
    in-place merging never corrupts a view another rank still reads.
    """

    __slots__ = ("buf", "indices", "values", "length", "sim_bytes",
                 "policy", "owned", "_wire_cache")

    def __init__(self, buf: np.ndarray, sim_bytes: float, *,
                 policy: Optional[SparsePolicy] = None, owned: bool = False):
        self.buf = np.asarray(buf, dtype=np.float64)
        self.indices: Optional[np.ndarray] = None
        self.values: Optional[np.ndarray] = None
        self.length = int(self.buf.size)
        self.sim_bytes = float(sim_bytes)
        self.policy = policy
        self.owned = bool(owned)
        self._wire_cache: Optional[float] = None
        if self.sim_bytes < 0:
            raise ValueError(f"negative simulated size: {sim_bytes}")

    @classmethod
    def sparse(cls, length: int, indices: np.ndarray, values: np.ndarray,
               sim_bytes: float, *, policy: Optional[SparsePolicy] = None,
               owned: bool = True) -> "AggregatorSegment":
        """A segment from coalesced sparse entries (densifies if due).

        ``indices`` must be sorted and unique (the coalesced form);
        ``sim_bytes`` is the dense-equivalent size, same as the dense
        constructor.
        """
        # sparse construction implies the adaptive mode; the default may
        # only be read through the spec layer's single resolution site
        policy = resolve_sparse_policy(True, policy)
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.shape != values.shape or indices.ndim != 1:
            raise ValueError(
                f"indices {indices.shape} and values {values.shape} must "
                f"be aligned 1-D arrays")
        if policy.should_densify(indices.size, length):
            return cls(densify_sparse(indices, values, int(length)),
                       sim_bytes, policy=policy, owned=True)
        seg = cls.__new__(cls)
        seg.buf = None
        seg.indices = indices
        seg.values = values
        seg.length = int(length)
        seg.sim_bytes = float(sim_bytes)
        seg.policy = policy
        seg.owned = bool(owned)
        seg._wire_cache = None
        if seg.sim_bytes < 0:
            raise ValueError(f"negative simulated size: {sim_bytes}")
        return seg

    # ------------------------------------------------------------- properties
    @property
    def is_sparse(self) -> bool:
        return self.buf is None

    @property
    def representation(self) -> str:
        return "sparse" if self.buf is None else "dense"

    @property
    def nnz(self) -> int:
        return int(self.indices.size) if self.buf is None else self.length

    @property
    def density(self) -> float:
        return (self.nnz / self.length) if self.length else 1.0

    def __sim_size__(self) -> float:
        """Bytes of the cheaper wire format (the per-send switch).

        Memoized: sparse segments are immutable after construction (merges
        that mutate in place only ever have a dense ``self``), so the wire
        size is computed once. Mutating merge branches drop the cache when
        they reassign ``sim_bytes``.
        """
        if self.buf is not None:
            return self.sim_bytes
        size = self._wire_cache
        if size is None:
            policy = self.policy
            dense = policy.dense_wire_bytes(self.length)
            scale = self.sim_bytes / dense if dense > 0 else 1.0
            size = policy.wire_bytes(self.indices.size, self.length, scale)
            self._wire_cache = size
        return size

    def __sim_dense_size__(self) -> float:
        return self.sim_bytes

    def to_array(self) -> np.ndarray:
        """The segment's dense values (the stored buffer when dense)."""
        if self.buf is not None:
            return self.buf
        return densify_sparse(self.indices, self.values, self.length)

    # ------------------------------------------------------------- operations
    def merge(self, other: "AggregatorSegment") -> "AggregatorSegment":
        """Element-wise sum (both of Figure 7's ``merge`` methods).

        Representation-adaptive: picks the sparse-sparse, sparse-dense or
        dense kernel, merging in place into an owned dense destination.
        The result may densify if the policy says the union crossed the
        threshold. ``other`` is never mutated.
        """
        if other.length != self.length:
            raise ValueError(
                f"segment shape mismatch: ({self.length},) vs "
                f"({other.length},)")
        sim = max(self.sim_bytes, other.sim_bytes)
        policy = self.policy if self.policy is not None else other.policy
        if self.buf is not None and other.buf is not None:
            if self.owned:
                np.add(self.buf, other.buf, out=self.buf)
                self.sim_bytes = sim
                self._wire_cache = None
                return self
            return AggregatorSegment(self.buf + other.buf, sim,
                                     policy=policy, owned=True)
        if self.buf is None and other.buf is None:
            idx, vals = merge_sparse(self.indices, self.values,
                                     other.indices, other.values)
            return AggregatorSegment.sparse(self.length, idx, vals, sim,
                                            policy=policy, owned=True)
        if self.buf is None:  # sparse self into a copy of dense other
            out = other.buf.copy()
            scatter_into(out, self.indices, self.values)
            return AggregatorSegment(out, sim, policy=policy, owned=True)
        # dense self + sparse other
        if self.owned:
            scatter_into(self.buf, other.indices, other.values)
            self.sim_bytes = sim
            self._wire_cache = None
            return self
        out = self.buf.copy()
        scatter_into(out, other.indices, other.values)
        return AggregatorSegment(out, sim, policy=policy, owned=True)

    def chunk_split(self, index: int,
                    num_chunks: int) -> "AggregatorSegment":
        """Chunk column ``index`` of ``num_chunks`` (pipelined_ring).

        The same block distribution as :meth:`FlatAggregator.split`, one
        level down: chunk boundaries depend only on ``(length,
        num_chunks)`` so every rank slices identically, and an elementwise
        merge of matching chunks is bit-identical to the corresponding
        slice of a whole-segment merge. Dense chunks are views (unowned);
        sparse chunks re-run the wire-format switch on their own density.
        """
        lo, hi = segment_range(self.length, num_chunks, index)
        frac = (hi - lo) / self.length if self.length else 0.0
        dense_bytes = self.sim_bytes * frac
        if self.buf is not None:
            return AggregatorSegment(self.buf[lo:hi], dense_bytes,
                                     policy=self.policy)
        idx, vals = slice_sparse(self.indices, self.values, lo, hi)
        return AggregatorSegment.sparse(hi - lo, idx, vals, dense_bytes,
                                        policy=self.policy, owned=False)

    @staticmethod
    def chunk_concat(parts: Sequence["AggregatorSegment"]
                     ) -> "AggregatorSegment":
        """Reassemble chunk columns into one segment (pipelined_ring).

        All-sparse parts stay sparse (indices rebased onto the combined
        length, preserving the honest wire size at gather time); any dense
        part densifies the result.
        """
        if not parts:
            raise ValueError("cannot concatenate zero chunks")
        if len(parts) == 1:
            return parts[0]
        sim = sum(p.sim_bytes for p in parts)
        policy = next((p.policy for p in parts if p.policy is not None),
                      None)
        total = sum(p.length for p in parts)
        if all(p.buf is None for p in parts):
            offsets = np.cumsum([0] + [p.length for p in parts[:-1]])
            idx = np.concatenate(
                [p.indices + off for p, off in zip(parts, offsets)])
            vals = np.concatenate([p.values for p in parts])
            return AggregatorSegment.sparse(total, idx, vals, sim,
                                            policy=policy, owned=True)
        buf = np.concatenate([p.to_array() for p in parts])
        return AggregatorSegment(buf, sim, policy=policy, owned=True)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (f"<AggregatorSegment n={self.length} "
                f"{self.representation} sim={self.sim_bytes:.0f}B>")


class FlatAggregator:
    """``Agg`` of Figure 7: a sample-foldable aggregator over a flat buffer.

    Parameters
    ----------
    payload_size:
        Physical length of the model-specific payload (e.g. the gradient
        dimension, or K*V for LDA).
    size_scale:
        Ratio of the paper-scale aggregator size to the surrogate size;
        the simulated byte size of the aggregator is
        ``(payload_size + 2) * 8 * size_scale``.
    buf:
        Optional pre-filled dense buffer (``payload_size + 2`` long).
    policy:
        When given (and no ``buf``), the aggregator starts in the
        density-adaptive sparse representation: ``payload`` is a
        :class:`SparseAccumulator` until it densifies, after which the
        aggregator collapses to the classic dense layout. All observable
        values are bit-identical to the dense reference either way.
    """

    __slots__ = ("buf", "payload_size", "size_scale", "policy", "_acc",
                 "_stats", "_dense_size", "_wire_cache")

    def __init__(self, payload_size: int, size_scale: float = 1.0,
                 buf: np.ndarray | None = None,
                 policy: Optional[SparsePolicy] = None):
        if payload_size < 0:
            raise ValueError(f"negative payload size: {payload_size}")
        if size_scale <= 0:
            raise ValueError(f"size_scale must be positive: {size_scale}")
        self.payload_size = int(payload_size)
        self.size_scale = float(size_scale)
        self.policy = policy
        self._acc: Optional[SparseAccumulator] = None
        self._stats: Optional[np.ndarray] = None
        self._dense_size: Optional[float] = None
        self._wire_cache: Optional[Tuple[int, float]] = None
        if buf is None and policy is not None:
            self.buf = None
            self._acc = SparseAccumulator(payload_size, policy)
            self._stats = np.zeros(_STATS_SLOTS)
        elif buf is None:
            self.buf = np.zeros(payload_size + _STATS_SLOTS)
        else:
            buf = np.asarray(buf, dtype=np.float64)
            if buf.size != payload_size + _STATS_SLOTS:
                raise ValueError(
                    f"buffer length {buf.size} != payload {payload_size} "
                    f"+ {_STATS_SLOTS}")
            self.buf = buf

    # ---------------------------------------------------- representation sync
    def _sync(self) -> None:
        """Collapse to the classic dense layout once the accumulator has
        densified internally (a copy; bits are preserved exactly)."""
        acc = self._acc
        if acc is None or acc.buf is None:
            return
        buf = np.empty(self.payload_size + _STATS_SLOTS)
        buf[:self.payload_size] = acc.buf
        buf[self.payload_size:] = self._stats
        self.buf = buf
        self._acc = None
        self._stats = None

    def _compact(self) -> None:
        """Coalesce the sparse state and sync if it densified."""
        if self._acc is not None:
            self._acc.coalesce()
            self._sync()

    def to_dense(self) -> "FlatAggregator":
        """Force the classic dense layout in place; returns self."""
        if self.buf is None:
            acc = self._acc
            buf = np.zeros(self.payload_size + _STATS_SLOTS)
            acc.write_into(buf[:self.payload_size])
            buf[self.payload_size:] = self._stats
            self.buf = buf
            self._acc = None
            self._stats = None
        return self

    # ----------------------------------------------------------------- views
    @property
    def payload(self):
        """The model-specific accumulation target.

        A dense view (in-place updates intended) in the classic layout; the
        :class:`SparseAccumulator` while the adaptive representation is
        still sparse (``SparseVector.add_to`` accepts both).
        """
        self._sync()
        if self._acc is not None:
            return self._acc
        return self.buf[:self.payload_size]

    @property
    def representation(self) -> str:
        if self.buf is not None or self._acc.is_dense:
            return "dense"
        return "sparse"

    @property
    def payload_nnz(self) -> int:
        """Stored payload entries (= payload size once dense)."""
        if self.buf is not None:
            return self.payload_size
        return self._acc.nnz

    @property
    def density(self) -> float:
        total = self.payload_size + _STATS_SLOTS
        if self.buf is not None or self._acc.is_dense:
            return 1.0
        return (self._acc.nnz + _STATS_SLOTS) / total if total else 1.0

    @property
    def loss_sum(self) -> float:
        if self._stats is not None:
            return float(self._stats[0])
        return float(self.buf[-2])

    @property
    def weight_sum(self) -> float:
        if self._stats is not None:
            return float(self._stats[1])
        return float(self.buf[-1])

    def add_stats(self, loss: float, weight: float = 1.0) -> None:
        if self._stats is not None:
            self._stats[0] += loss
            self._stats[1] += weight
        else:
            self.buf[-2] += loss
            self.buf[-1] += weight

    def __sim_size__(self) -> float:
        """Simulated serialized size — the cheaper wire format when the
        adaptive representation is still sparse.

        Memoized: the dense layout's size is a constant of the aggregator
        (``buf`` is always ``payload_size + 2`` long), and the sparse wire
        size is cached against the accumulator's mutation ``version`` so a
        cache hit also proves the pending ``_compact()`` would have been a
        no-op.
        """
        if self.buf is None:
            acc = self._acc
            cached = self._wire_cache
            if cached is not None and cached[0] == acc.version:
                return cached[1]
            self._compact()
            if self.buf is None:
                total = self.payload_size + _STATS_SLOTS
                size = self.policy.wire_bytes(acc.nnz + _STATS_SLOTS,
                                              total, self.size_scale)
                self._wire_cache = (acc.version, size)
                return size
        return self.__sim_dense_size__()

    def __sim_dense_size__(self) -> float:
        size = self._dense_size
        if size is None:
            size = (self.payload_size + _STATS_SLOTS) * 8.0 * self.size_scale
            self._dense_size = size
        return size

    # ------------------------------------------------------------ operations
    def merge(self, other: "FlatAggregator") -> "FlatAggregator":
        """In-place element-wise sum; returns self (MLlib merge style)."""
        if other.payload_size != self.payload_size:
            raise ValueError(
                f"aggregator size mismatch: "
                f"{self.payload_size + _STATS_SLOTS} vs "
                f"{other.payload_size + _STATS_SLOTS}")
        self._compact()
        other._compact()
        if self.buf is not None and other.buf is not None:
            self.buf += other.buf
            return self
        if self.buf is None and other.buf is None:
            self._acc.merge_accumulator(other._acc)
            self._stats += other._stats
            self._sync()
            return self
        if self.buf is None:  # sparse self + dense other
            self.to_dense()
            self.buf += other.buf
            return self
        # dense self + sparse other
        idx, vals = other._acc.indices_values()
        if idx.size:
            scatter_into(self.buf[:self.payload_size], idx, vals)
        self.buf[self.payload_size:] += other._stats
        return self

    def copy(self) -> "FlatAggregator":
        out = FlatAggregator.__new__(FlatAggregator)
        out.payload_size = self.payload_size
        out.size_scale = self.size_scale
        out.policy = self.policy
        out.buf = None if self.buf is None else self.buf.copy()
        out._acc = None if self._acc is None else self._acc.copy()
        out._stats = None if self._stats is None else self._stats.copy()
        out._dense_size = self._dense_size
        out._wire_cache = self._wire_cache
        return out

    def split(self, index: int, num_segments: int) -> AggregatorSegment:
        """``splitOp``: contiguous segment ``index`` of ``num_segments``.

        Dense aggregators hand out buffer views (unowned); sparse ones
        slice their coalesced entries, with the statistics slots carried
        as entries at their flat positions.
        """
        self._compact()
        total = self.payload_size + _STATS_SLOTS
        lo, hi = segment_range(total, num_segments, index)
        frac = (hi - lo) / total if total else 0.0
        dense_bytes = self.__sim_dense_size__() * frac
        if self.buf is not None:
            return AggregatorSegment(self.buf[lo:hi], dense_bytes,
                                     policy=self.policy)
        idx, vals = self._acc.indices_values()
        seg_idx, seg_vals = slice_sparse(idx, vals, lo,
                                         min(hi, self.payload_size))
        stats_lo = max(lo, self.payload_size)
        if stats_lo < hi:
            offs = np.arange(stats_lo - self.payload_size,
                             hi - self.payload_size)
            seg_idx = np.concatenate(
                [seg_idx, offs + (self.payload_size - lo)])
            seg_vals = np.concatenate([seg_vals, self._stats[offs]])
        return AggregatorSegment.sparse(hi - lo, seg_idx, seg_vals,
                                        dense_bytes, policy=self.policy)

    @staticmethod
    def concat(segments: Sequence[AggregatorSegment],
               size_scale: float = 1.0) -> "FlatAggregator":
        """``concatOp``: reassemble segments into a full (dense) aggregator."""
        if not segments:
            raise ValueError("cannot concatenate zero segments")
        buf = np.concatenate([s.to_array() for s in segments])
        return FlatAggregator(buf.size - _STATS_SLOTS, size_scale, buf)

    def __repr__(self) -> str:
        return (f"<FlatAggregator payload={self.payload_size} "
                f"{self.representation if self.policy else 'dense'} "
                f"loss={self.loss_sum:.4g} weight={self.weight_sum:g}>")


# Module-level SAI callbacks (Figure 6 signatures) for FlatAggregator.
def split_op(agg: FlatAggregator, index: int,
             num_segments: int) -> AggregatorSegment:
    """``splitOp(U, i, n) -> V`` for :class:`FlatAggregator`."""
    return agg.split(index, num_segments)


def reduce_op(a: AggregatorSegment, b: AggregatorSegment) -> AggregatorSegment:
    """``reduceOp(V, V) -> V``: element-wise segment sum."""
    return a.merge(b)


def concat_op(segments: Sequence[AggregatorSegment]) -> FlatAggregator:
    """``concatOp(Seq[V]) -> V`` (reassembled as a full aggregator)."""
    if not segments:
        raise ValueError("cannot concatenate zero segments")
    physical = sum(len(s) for s in segments) * 8.0
    # sim_bytes is each segment's dense-equivalent size, so the recovered
    # scale is wire-format independent.
    simulated = sum(s.sim_bytes for s in segments)
    scale = simulated / physical if physical > 0 else 1.0
    return FlatAggregator.concat(segments, size_scale=max(scale, 1e-12))
