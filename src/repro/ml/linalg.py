"""Minimal linear algebra for the ML layer: sparse vectors, labeled points.

Feature vectors in the paper's workloads (libsvm format, up to 54M
dimensions) are extremely sparse, so the data representation is a classic
index/value pair of NumPy arrays. All hot operations (``dot``, ``add_to``)
are vectorized gathers/scatters — no Python-level loops over non-zeros.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["SparseVector", "LabeledPoint"]


class SparseVector:
    """An immutable sparse vector over ``float64``.

    Parameters
    ----------
    size:
        Dimensionality of the (mostly zero) dense space.
    indices:
        Strictly increasing non-zero positions.
    values:
        Non-zero values, aligned with ``indices``.
    """

    __slots__ = ("size", "indices", "values")

    def __init__(self, size: int, indices: Sequence[int],
                 values: Sequence[float]):
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.shape != values.shape or indices.ndim != 1:
            raise ValueError(
                f"indices {indices.shape} and values {values.shape} must be "
                f"aligned 1-D arrays")
        if size < 0:
            raise ValueError(f"negative size: {size}")
        if indices.size:
            if indices[0] < 0 or indices[-1] >= size:
                raise ValueError(
                    f"indices out of range [0, {size}): "
                    f"[{indices[0]}, {indices[-1]}]")
            if np.any(np.diff(indices) <= 0):
                raise ValueError("indices must be strictly increasing")
        self.size = int(size)
        self.indices = indices
        self.values = values

    # ------------------------------------------------------------- properties
    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.indices.size)

    def __sim_size__(self) -> float:
        # 8B value + 4B index per non-zero, like Spark's SparseVector.
        return 12.0 * self.nnz + 16.0

    # -------------------------------------------------------------- operations
    def dot(self, dense: np.ndarray) -> float:
        """Inner product with a dense vector."""
        if dense.shape[0] != self.size:
            raise ValueError(
                f"dimension mismatch: {self.size} vs {dense.shape[0]}")
        return float(dense[self.indices] @ self.values)

    def add_to(self, target, scale: float = 1.0) -> None:
        """In-place ``target[indices] += scale * values`` (axpy).

        ``target`` is either a dense array or a sparse-accumulation object
        with a ``scatter_add(indices, values)`` method (the adaptive
        aggregation path); the scaled contributions are identical bitwise
        either way.
        """
        if isinstance(target, np.ndarray):
            if target.shape[0] != self.size:
                raise ValueError(
                    f"dimension mismatch: {self.size} vs {target.shape[0]}")
            # Indices are strictly increasing (validated in __init__), so
            # the unbuffered np.add.at — only needed for duplicate indices
            # — can be the plain fancy-index +=, which is several times
            # faster and performs the identical per-element IEEE adds.
            target[self.indices] += (self.values if scale == 1.0
                                     else scale * self.values)
            return
        if target.size != self.size:
            raise ValueError(
                f"dimension mismatch: {self.size} vs {target.size}")
        target.scatter_add(self.indices, scale * self.values)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.size)
        out[self.indices] = self.values
        return out

    def norm_sq(self) -> float:
        """Squared L2 norm."""
        return float(self.values @ self.values)

    @classmethod
    def from_dense(cls, dense: Iterable[float]) -> "SparseVector":
        arr = np.asarray(list(dense), dtype=np.float64)
        idx = np.flatnonzero(arr)
        return cls(arr.size, idx, arr[idx])

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SparseVector)
                and self.size == other.size
                and np.array_equal(self.indices, other.indices)
                and np.array_equal(self.values, other.values))

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self.size, self.indices.tobytes(),
                     self.values.tobytes()))

    def __repr__(self) -> str:
        return f"<SparseVector size={self.size} nnz={self.nnz}>"


class LabeledPoint:
    """A training example: a label and a sparse feature vector."""

    __slots__ = ("label", "features")

    def __init__(self, label: float, features: SparseVector):
        self.label = float(label)
        self.features = features

    def __sim_size__(self) -> float:
        return 8.0 + self.features.__sim_size__()

    def __repr__(self) -> str:
        return f"<LabeledPoint y={self.label:g} {self.features!r}>"
