"""Distributed gradient descent (MLlib's ``GradientDescent``), with a
pluggable aggregation backend.

Every iteration is the loop the paper profiles end-to-end:

1. **broadcast** the current weights to all nodes,
2. **aggregate** per-sample gradients over the RDD — through vanilla
   ``treeAggregate``, ``treeAggregate`` with IMM, or Sparker's
   ``splitAggregate`` (the ``aggregation`` parameter is the paper's
   "configuration parameter to control whether to use split aggregation"),
3. **update** the weights at the driver (the non-scalable "Driver" slice of
   Figures 3/4/18).

Compute time for user code is virtual: the per-sample cost function (in
seconds on one paper-grade core) is attached to ``seqOp`` via
:class:`~repro.rdd.costing.Costed`, and the broadcast/aggregator sizes are
scaled to paper-scale dimensions through ``size_scale``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.aggregation import tree_aggregate
from ..core.sai import split_aggregate
from ..core.spec import AggregationSpec, spec_with_legacy, warn_deprecated_kwarg
from ..rdd.costing import Costed
from ..rdd.rdd import RDD
from ..serde import SparsePolicy
from .aggregators import FlatAggregator, concat_op, reduce_op, split_op
from .batched import batched_seq_op
from .gradient import Gradient
from .linalg import LabeledPoint
from .updater import Updater

__all__ = ["GradientDescent", "AGGREGATION_MODES", "ScaledPayloadValue",
           "JVM_FLOP_TIME", "nnz_sample_cost"]

#: effective seconds per floating-point op in JVM sparse-vector code.
#: Deliberately far above silicon peak: MLlib's per-sample path goes
#: through boxed iterators, closure dispatch and feature standardization,
#: and is calibrated here so the aggregation share of end-to-end time
#: lands in the regime of the paper's Figure 2 (~67% geomean on 8 nodes).
JVM_FLOP_TIME = 2.5e-8

AGGREGATION_MODES = ("tree", "tree_imm", "split")


class ScaledPayloadValue:
    """A broadcast payload whose simulated size is paper-scale."""

    __slots__ = ("value", "sim_bytes")

    def __init__(self, value: np.ndarray, sim_bytes: float):
        self.value = value
        self.sim_bytes = float(sim_bytes)

    def __sim_size__(self) -> float:
        return self.sim_bytes


def nnz_sample_cost(gradient: Gradient, sample_scale: float = 1.0,
                    flop_time: float = JVM_FLOP_TIME
                    ) -> Callable[[FlatAggregator, LabeledPoint], float]:
    """Per-sample virtual cost: ``flops_per_nnz * nnz * flop_time``.

    ``sample_scale`` maps a surrogate sample to the number of paper-scale
    samples it stands for (DESIGN.md §2), so one surrogate sample charges
    the time its whole cohort would take on one core.
    """
    per_nnz = gradient.flops_per_nnz * flop_time * sample_scale

    def cost(_agg: FlatAggregator, point: LabeledPoint) -> float:
        return point.features.nnz * per_nnz

    return cost


class GradientDescent:
    """Mini-batch gradient descent over an RDD of labeled points."""

    def __init__(self, gradient: Gradient, updater: Updater,
                 step_size: float = 1.0, num_iterations: int = 10,
                 reg_param: float = 0.0, mini_batch_fraction: float = 1.0,
                 aggregation: str = "tree", depth: int = 2,
                 spec: Optional[AggregationSpec] = None,
                 convergence_tol: float = 0.0,
                 size_scale: float = 1.0, sample_scale: float = 1.0,
                 flop_time: float = JVM_FLOP_TIME, *,
                 parallelism: Optional[int] = None,
                 sparse_aggregation: Optional[bool] = None,
                 sparse_policy: Optional[SparsePolicy] = None,
                 batched: Optional[bool] = None):
        if aggregation not in AGGREGATION_MODES:
            raise ValueError(
                f"aggregation must be one of {AGGREGATION_MODES}, "
                f"got {aggregation!r}")
        if num_iterations < 1:
            raise ValueError(f"num_iterations must be >= 1: {num_iterations}")
        if not 0.0 < mini_batch_fraction <= 1.0:
            raise ValueError(
                f"mini_batch_fraction in (0, 1] required: "
                f"{mini_batch_fraction}")
        if isinstance(spec, int):
            # the pre-spec signature's 9th positional argument
            warn_deprecated_kwarg("parallelism", "GradientDescent",
                                  stacklevel=3)
            spec = AggregationSpec(parallelism=spec)
        self.gradient = gradient
        self.updater = updater
        self.step_size = step_size
        self.num_iterations = num_iterations
        self.reg_param = reg_param
        self.mini_batch_fraction = mini_batch_fraction
        self.aggregation = aggregation
        self.depth = depth
        self.spec = spec_with_legacy(
            spec, "GradientDescent",
            parallelism=parallelism, sparse_aggregation=sparse_aggregation,
            sparse_policy=sparse_policy, batched=batched)
        self.convergence_tol = convergence_tol
        self.size_scale = size_scale
        self.sample_scale = sample_scale
        self.flop_time = flop_time
        # Density-adaptive aggregation: resolved exactly once, here — the
        # seqOp accumulator, the wire-format switch and any derived split
        # ops all share this one policy object for the whole job.
        self._resolved_policy = self.spec.resolved_sparse_policy

    # Pre-spec attribute views, for callers that introspect the trainer.
    @property
    def parallelism(self) -> int:
        return self.spec.parallelism

    @property
    def sparse_aggregation(self) -> bool:
        return self.spec.sparse_aggregation

    @property
    def sparse_policy(self) -> Optional[SparsePolicy]:
        return self._resolved_policy

    @property
    def batched(self) -> bool:
        return self.spec.batched

    # ------------------------------------------------------------------ run
    def optimize(self, data: RDD,
                 initial_weights: np.ndarray
                 ) -> Tuple[np.ndarray, List[float]]:
        """Train; returns final weights and the per-iteration loss history."""
        sc = data.sc
        weights = np.asarray(initial_weights, dtype=np.float64).copy()
        dim = weights.size
        losses: List[float] = []
        sample_cost = nnz_sample_cost(self.gradient, self.sample_scale,
                                      self.flop_time)

        for iteration in range(1, self.num_iterations + 1):
            with sc.stopwatch.span("ml.broadcast"):
                bc = sc.broadcast(ScaledPayloadValue(
                    weights, dim * 8.0 * self.size_scale))

            agg = self._aggregate(data, bc, dim, sample_cost, iteration)
            bc.destroy()

            count = agg.weight_sum
            if count <= 0:
                raise ValueError(
                    "no samples contributed this iteration "
                    "(mini-batch too small?)")

            # --- driver update (the paper's non-scalable "Driver" slice) --
            with sc.stopwatch.span("ml.driver"):
                if agg.representation != "dense":
                    # Adaptive tree modes can hand the driver a still-
                    # sparse aggregator; the updater wants a dense array.
                    agg.to_dense()
                grad = agg.payload / count
                new_weights, reg_loss = self.updater.compute(
                    weights, grad, self.step_size, iteration, self.reg_param)
                losses.append(agg.loss_sum / count + reg_loss)
                # A few passes over a paper-scale weight vector on one
                # thread.
                driver_seconds = 3.0 * dim * self.size_scale \
                    / sc.cluster.config.merge_bandwidth * 8.0
                proc = sc.env.process(sc.driver_work(driver_seconds))
                sc.env.run(until=proc)

            delta = float(np.linalg.norm(new_weights - weights))
            weights = new_weights
            if self.convergence_tol > 0.0:
                norm = float(np.linalg.norm(weights)) or 1.0
                if delta / norm < self.convergence_tol:
                    break
        return weights, losses

    # ------------------------------------------------------------ internals
    def _aggregate(self, data: RDD, bc, dim: int,
                   sample_cost: Callable, iteration: int) -> FlatAggregator:
        batch = data
        if self.mini_batch_fraction < 1.0:
            batch = data.sample(self.mini_batch_fraction, seed=iteration)

        gradient = self.gradient

        def fold(agg: FlatAggregator, point: LabeledPoint) -> FlatAggregator:
            loss = gradient.add_to(point, bc.value.value, agg.payload)
            agg.add_stats(loss, 1.0)
            return agg

        if self.batched:
            seq_op = batched_seq_op(gradient, lambda: bc.value.value, dim,
                                    fold, sample_cost)
        else:
            seq_op = Costed(fold, sample_cost)
        merge = Costed(lambda a, b: a.merge(b), 0.0)
        size_scale = self.size_scale
        policy = self._resolved_policy
        zero = lambda: FlatAggregator(dim, size_scale,  # noqa: E731
                                      policy=policy)

        if self.aggregation == "split":
            return split_aggregate(
                batch, zero, seq_op, split_op, reduce_op, concat_op,
                self.spec, merge_op=merge)
        return tree_aggregate(batch, zero, seq_op, merge, depth=self.depth,
                              imm=(self.aggregation == "tree_imm"))
