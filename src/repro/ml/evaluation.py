"""Model evaluation: binary classification metrics and LDA perplexity.

The MLlib counterparts (``BinaryClassificationMetrics``,
``LDAModel.logPerplexity``) are what a user would run after the training
loops this repository benchmarks; they also give the tests sharper ways to
assert that models actually learned.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .classification import LinearModel
from .lda import LDAModel
from .linalg import LabeledPoint, SparseVector

__all__ = ["BinaryClassificationMetrics", "log_perplexity"]


class BinaryClassificationMetrics:
    """Threshold-based metrics over scored binary predictions.

    Parameters
    ----------
    scores_and_labels:
        ``(score, label)`` pairs with labels in {0, 1}; higher scores mean
        more positive.
    """

    def __init__(self, scores_and_labels: Sequence[Tuple[float, float]]):
        if not scores_and_labels:
            raise ValueError("metrics need at least one scored example")
        pairs = sorted(scores_and_labels, key=lambda sl: -sl[0])
        self.scores = np.array([s for s, _l in pairs])
        self.labels = np.array([l for _s, l in pairs])
        if not np.all((self.labels == 0) | (self.labels == 1)):
            raise ValueError("labels must be in {0, 1}")
        self.num_positives = float(self.labels.sum())
        self.num_negatives = float(len(self.labels) - self.num_positives)

    @classmethod
    def from_model(cls, model: LinearModel,
                   points: Sequence[LabeledPoint]
                   ) -> "BinaryClassificationMetrics":
        """Score ``points`` with the model's margin."""
        return cls([(model.margin(p.features), p.label) for p in points])

    # -------------------------------------------------------------- curves
    def roc_curve(self) -> List[Tuple[float, float]]:
        """``(false_positive_rate, true_positive_rate)`` points.

        Swept over every distinct score threshold, anchored at (0,0) and
        (1,1).
        """
        if self.num_positives == 0 or self.num_negatives == 0:
            raise ValueError("ROC needs both classes present")
        tp = np.cumsum(self.labels)
        fp = np.cumsum(1 - self.labels)
        tpr = tp / self.num_positives
        fpr = fp / self.num_negatives
        points = [(0.0, 0.0)]
        points.extend(zip(fpr.tolist(), tpr.tolist()))
        if points[-1] != (1.0, 1.0):
            points.append((1.0, 1.0))
        return points

    def area_under_roc(self) -> float:
        """AUC by trapezoidal integration of the ROC curve."""
        curve = self.roc_curve()
        xs = np.array([x for x, _y in curve])
        ys = np.array([y for _x, y in curve])
        return float(np.trapezoid(ys, xs))

    # ---------------------------------------------------------- thresholded
    def confusion_at(self, threshold: float
                     ) -> Tuple[float, float, float, float]:
        """``(tp, fp, tn, fn)`` when predicting positive above threshold."""
        predicted = self.scores > threshold
        tp = float(np.sum(predicted & (self.labels == 1)))
        fp = float(np.sum(predicted & (self.labels == 0)))
        tn = float(np.sum(~predicted & (self.labels == 0)))
        fn = float(np.sum(~predicted & (self.labels == 1)))
        return tp, fp, tn, fn

    def precision_at(self, threshold: float) -> float:
        tp, fp, _tn, _fn = self.confusion_at(threshold)
        return tp / (tp + fp) if tp + fp > 0 else 0.0

    def recall_at(self, threshold: float) -> float:
        tp, _fp, _tn, fn = self.confusion_at(threshold)
        return tp / (tp + fn) if tp + fn > 0 else 0.0

    def f1_at(self, threshold: float) -> float:
        precision = self.precision_at(threshold)
        recall = self.recall_at(threshold)
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def accuracy_at(self, threshold: float) -> float:
        tp, fp, tn, fn = self.confusion_at(threshold)
        return (tp + tn) / (tp + fp + tn + fn)


def log_perplexity(model: LDAModel, docs: Sequence[SparseVector]) -> float:
    """Per-token log perplexity of held-out documents (lower is better).

    Uses the model's variational document inference to build per-document
    word distributions, like MLlib's ``logPerplexity``.
    """
    total_log_prob = 0.0
    total_tokens = 0.0
    for doc in docs:
        if doc.nnz == 0:
            continue
        theta = model.infer(doc)
        word_probs = theta @ model.topics[:, doc.indices] + 1e-100
        total_log_prob += float(doc.values @ np.log(word_probs))
        total_tokens += float(doc.values.sum())
    if total_tokens == 0:
        raise ValueError("perplexity of an empty corpus")
    return -total_log_prob / total_tokens
