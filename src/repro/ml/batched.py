"""Opt-in per-partition CSR batching for gradient ``seqOp``s.

The per-element aggregation path pays a Python-level loop per sample:
closure dispatch, a sparse ``dot``, and a scatter per point. For the
simulator this is pure host overhead — virtual time is charged by the cost
model either way — so batching is a *wall-clock* optimization of the
harness itself (the benchmark scripts run thousands of surrogate samples
per iteration).

The batched path builds one CSR matrix per partition (cached across
iterations keyed on the partition's identity), computes all margins with
one gather + segment-sum, and scatters all gradient contributions with one
``np.add.at``. Bit-level notes:

* gradient *contributions* land in the same per-entry order the
  per-element loop would produce (CSR rows are partition order), so the
  sparse-vs-dense accumulation target cannot introduce divergence;
* the *hinge* kernel's multipliers are exactly ``0``/``±1`` (away from
  the measure-zero decision boundary), so its gradient sums are
  bit-identical to the per-element fold; the *logistic* multipliers go
  through vectorized ``np.exp`` and a ``bincount`` segment sum rather
  than libm ``math.exp`` and BLAS dots, so its sums (and all per-sample
  losses, reduced with NumPy pairwise summation) are allclose within a
  few ulp but not bit-equal — the batched path trades that contract for
  speed, which is why it is opt-in;
* the virtual time charged is the exact left-fold sum the per-element
  loop would charge (``TaskContext.charge`` starts each fold at the same
  accumulated value), so simulated timings do not move.

No SciPy: the CSR is three NumPy arrays plus a per-entry row-id vector,
which turns the row-wise margin sum into ``np.bincount``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from ..rdd.costing import ELEMENT_OVERHEAD, Costed
from ..rdd.task_context import TaskContext
from .gradient import Gradient, HingeGradient, LogisticGradient
from .linalg import LabeledPoint

__all__ = ["CSRMatrix", "partition_csr", "csr_cache_stats",
           "clear_csr_cache", "BatchedSeqOp", "batched_seq_op",
           "supports_batching"]


class CSRMatrix:
    """A partition's samples as one compressed-sparse-row matrix."""

    __slots__ = ("num_rows", "num_cols", "indptr", "indices", "data",
                 "row_ids", "labels")

    def __init__(self, num_rows: int, num_cols: int, indptr: np.ndarray,
                 indices: np.ndarray, data: np.ndarray,
                 labels: np.ndarray):
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.labels = labels
        # per-entry row id: the expansion of indptr that lets bincount do
        # the row-wise segment sum without SciPy
        counts = np.diff(indptr)
        self.row_ids = np.repeat(np.arange(num_rows, dtype=np.int64),
                                 counts)

    @classmethod
    def from_points(cls, points: List[LabeledPoint],
                    num_cols: int) -> "CSRMatrix":
        n = len(points)
        indptr = np.zeros(n + 1, dtype=np.int64)
        for i, p in enumerate(points):
            if p.features.size != num_cols:
                raise ValueError(
                    f"sample {i} has {p.features.size} features, "
                    f"expected {num_cols}")
            indptr[i + 1] = indptr[i] + p.features.nnz
        if n:
            indices = np.concatenate([p.features.indices for p in points])
            data = np.concatenate([p.features.values for p in points])
        else:
            indices = np.empty(0, dtype=np.int64)
            data = np.empty(0, dtype=np.float64)
        labels = np.fromiter((p.label for p in points), dtype=np.float64,
                             count=n)
        return cls(n, num_cols, indptr, indices, data, labels)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def dots(self, weights: np.ndarray) -> np.ndarray:
        """Row-wise ``w . x`` for every sample: one gather + segment sum."""
        if weights.shape[0] != self.num_cols:
            raise ValueError(
                f"dimension mismatch: {self.num_cols} vs "
                f"{weights.shape[0]}")
        contrib = self.data * weights[self.indices]
        return np.bincount(self.row_ids, weights=contrib,
                           minlength=self.num_rows)

    def scatter_grad(self, target: Any, multipliers: np.ndarray) -> None:
        """``target[j] += multiplier[row] * value`` over all entries.

        Entries whose multiplier is exactly zero are dropped first — the
        per-element path never touches those samples, and the adaptive
        accumulator's nnz accounting must agree.
        """
        entry_mult = multipliers[self.row_ids]
        idx, vals = self.indices, self.data * entry_mult
        live = entry_mult != 0.0
        if not live.all():
            idx, vals = idx[live], vals[live]
        if isinstance(target, np.ndarray):
            np.add.at(target, idx, vals)
        else:
            target.scatter_add(idx, vals)


# -------------------------------------------------------------- CSR cache
#: (id(points), len(points), num_cols) -> (points, csr). Holding the
#: partition list itself keeps the id() key valid (no reuse after gc).
_CSR_CACHE: "OrderedDict[Tuple[int, int, int], Tuple[list, CSRMatrix]]" = \
    OrderedDict()
_CSR_CACHE_LIMIT = 64
_CACHE_STATS = {"hits": 0, "misses": 0}


def partition_csr(points: List[LabeledPoint], num_cols: int) -> CSRMatrix:
    """The partition's CSR, built once and cached across iterations."""
    key = (id(points), len(points), num_cols)
    entry = _CSR_CACHE.get(key)
    if entry is not None and entry[0] is points:
        _CSR_CACHE.move_to_end(key)
        _CACHE_STATS["hits"] += 1
        return entry[1]
    csr = CSRMatrix.from_points(points, num_cols)
    _CSR_CACHE[key] = (points, csr)
    _CACHE_STATS["misses"] += 1
    while len(_CSR_CACHE) > _CSR_CACHE_LIMIT:
        _CSR_CACHE.popitem(last=False)
    return csr


def csr_cache_stats() -> Dict[str, int]:
    return dict(_CACHE_STATS)


def clear_csr_cache() -> None:
    _CSR_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


# ---------------------------------------------------------- batch kernels
def _logistic_batch(csr: CSRMatrix, weights: np.ndarray, agg: Any) -> None:
    # MLlib's formulation, vectorized: margin = -w.x per row.
    margins = -csr.dots(weights)
    multipliers = (1.0 / (1.0 + np.exp(np.minimum(margins, 500.0)))
                   - csr.labels)
    csr.scatter_grad(agg.payload, multipliers)
    log1p_exp = np.logaddexp(0.0, margins)
    losses = np.where(csr.labels > 0, log1p_exp, log1p_exp - margins)
    agg.add_stats(float(losses.sum()), float(csr.num_rows))


def _hinge_batch(csr: CSRMatrix, weights: np.ndarray, agg: Any) -> None:
    dots = csr.dots(weights)
    ys = 2.0 * csr.labels - 1.0  # {0,1} -> {-1,+1}
    slack = 1.0 - ys * dots
    active = slack > 0.0
    multipliers = np.where(active, -ys, 0.0)
    csr.scatter_grad(agg.payload, multipliers)
    agg.add_stats(float(slack[active].sum()), float(csr.num_rows))


_BATCH_KERNELS: Dict[type, Callable] = {
    LogisticGradient: _logistic_batch,
    HingeGradient: _hinge_batch,
}


def supports_batching(gradient: Gradient) -> bool:
    """Whether ``gradient`` has a registered whole-partition kernel."""
    return type(gradient) in _BATCH_KERNELS


# ------------------------------------------------------------- the seqOp
class BatchedSeqOp(Costed):
    """A ``seqOp`` with a whole-partition ``fold_partition`` fast path.

    The engine's partition folds probe for the ``fold_partition``
    attribute (duck-typed); everything else — IMM merges, segment splits —
    still sees an ordinary :class:`Costed` callable, and the per-element
    ``__call__`` remains available as the reference implementation.
    """

    __slots__ = ("gradient", "weights_of", "num_cols", "kernel")

    def __init__(self, gradient: Gradient, weights_of: Callable[[], Any],
                 num_cols: int, fn: Callable, cost_fn: Any):
        super().__init__(fn, cost_fn)
        kernel = _BATCH_KERNELS.get(type(gradient))
        if kernel is None:
            raise TypeError(
                f"no batch kernel registered for "
                f"{type(gradient).__name__}; supported: "
                f"{sorted(c.__name__ for c in _BATCH_KERNELS)}")
        self.gradient = gradient
        self.weights_of = weights_of
        self.num_cols = num_cols
        self.kernel = kernel

    def fold_partition(self, acc: Any, data: list,
                       ctx: TaskContext) -> Any:
        # Charge exactly what the per-element loop would: the same left
        # fold of per-sample costs, delivered as one lump.
        total = 0.0
        cost_fn = self.cost_fn
        if callable(cost_fn):
            for x in data:
                total += cost_fn(acc, x) + ELEMENT_OVERHEAD
        else:
            per = float(cost_fn) + ELEMENT_OVERHEAD
            for _ in range(len(data)):
                total += per
        ctx.charge(total)
        if not data:
            return acc
        csr = partition_csr(data, self.num_cols)
        self.kernel(csr, self.weights_of(), acc)
        return acc


def batched_seq_op(gradient: Gradient, weights_of: Callable[[], Any],
                   num_cols: int, fn: Callable,
                   cost_fn: Any) -> BatchedSeqOp:
    """Wrap a per-element fold with the batched partition kernel."""
    return BatchedSeqOp(gradient, weights_of, num_cols, fn, cost_fn)
