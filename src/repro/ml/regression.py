"""Linear regression by distributed gradient descent.

Completes the MLlib trio of generalized linear models over the shared
:class:`~repro.ml.optimization.GradientDescent` optimizer — and therefore
over the same tree/split aggregation backends the paper compares.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .classification import _SGDTrainer
from .gradient import LeastSquaresGradient
from .linalg import LabeledPoint, SparseVector

__all__ = ["LinearRegressionModel", "LinearRegressionWithSGD"]


class LinearRegressionModel:
    """A fitted linear predictor ``y(x) = w . x``."""

    def __init__(self, weights: np.ndarray, losses: List[float]):
        self.weights = np.asarray(weights, dtype=np.float64)
        #: mean squared-loss per iteration
        self.losses = list(losses)

    def predict(self, features: SparseVector) -> float:
        return features.dot(self.weights)

    def mean_squared_error(self, points: Sequence[LabeledPoint]) -> float:
        if not points:
            raise ValueError("MSE of an empty sample")
        errors = [(self.predict(p.features) - p.label) ** 2 for p in points]
        return float(np.mean(errors))

    # Keep the LinearModel-compatible surface for shared tooling.
    def margin(self, features: SparseVector) -> float:
        return self.predict(features)


class LinearRegressionWithSGD(_SGDTrainer):
    """Least-squares regression through the shared SGD trainer."""

    gradient_cls = LeastSquaresGradient
    model_cls = LinearRegressionModel
