"""Simulated-size estimation for values crossing executor boundaries.

Every value that would be serialized in real Spark — task results, shuffle
blocks, broadcast variables, messages — has a *simulated size* in bytes.
That size drives the serialization and network cost models, so it must be
available without actually pickling anything.

Resolution order for :func:`sim_sizeof`:

1. a ``__sim_size__()`` method on the object (the :class:`SimSized`
   protocol) — aggregator classes and :class:`SizedPayload` use this to
   declare *logical* (paper-scale) sizes that may exceed their physical
   NumPy footprint;
2. NumPy arrays — ``nbytes`` plus a small object header;
3. builtin scalars and containers — recursive estimates with per-object
   JVM-flavoured overheads.

The constants approximate JVM heap costs (what Spark would serialize), not
CPython's ``sys.getsizeof``; absolute values only need to be in the right
regime since every figure is about ratios.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["SimSized", "sim_sizeof", "sim_dense_sizeof",
           "representation_of", "density_of"]

#: per-object serialized header (type tag, length fields)
_OBJECT_OVERHEAD = 16
#: per-element overhead in generic containers (references)
_REF_OVERHEAD = 8
#: cap on how many container elements we sample before extrapolating
_SAMPLE_LIMIT = 64


@runtime_checkable
class SimSized(Protocol):
    """Objects that declare their own simulated serialized size."""

    def __sim_size__(self) -> float:
        """Return the serialized size of this value, in bytes."""
        ...  # pragma: no cover - protocol body


def sim_sizeof(value: Any) -> float:
    """Estimated serialized size of ``value`` in bytes.

    Deterministic and cheap: containers larger than a small sample are
    extrapolated from their first elements rather than walked completely.
    """
    if value is None:
        return 1.0
    # hasattr instead of isinstance(SimSized): runtime_checkable Protocol
    # checks are far too slow for this hot path.
    declared = getattr(value, "__sim_size__", None)
    if declared is not None:
        size = float(declared())
        if size < 0:
            raise ValueError(
                f"{type(value).__name__}.__sim_size__ returned {size}"
            )
        return size
    if isinstance(value, np.ndarray):
        return float(value.nbytes) + _OBJECT_OVERHEAD
    if isinstance(value, np.generic):
        return float(value.nbytes) + 2.0
    if isinstance(value, bool):
        return 1.0
    if isinstance(value, (int, float, complex)):
        return 8.0 + 2.0
    if isinstance(value, str):
        return float(len(value.encode("utf-8", errors="replace"))) + _OBJECT_OVERHEAD
    if isinstance(value, (bytes, bytearray, memoryview)):
        return float(len(value)) + _OBJECT_OVERHEAD
    if isinstance(value, dict):
        return _container_size(list(value.items()), pair=True)
    if isinstance(value, (list, tuple, set, frozenset)):
        return _container_size(list(value))
    # Generic object: shallow estimate over __dict__ / __slots__.
    state = getattr(value, "__dict__", None)
    if state:
        return _OBJECT_OVERHEAD + sum(
            sim_sizeof(v) + _REF_OVERHEAD for v in state.values()
        )
    slots = getattr(type(value), "__slots__", None)
    if slots:
        total = float(_OBJECT_OVERHEAD)
        for slot in slots:
            try:
                total += sim_sizeof(getattr(value, slot)) + _REF_OVERHEAD
            except AttributeError:
                continue
        return total
    return float(_OBJECT_OVERHEAD)


def _container_size(items: list, pair: bool = False) -> float:
    n = len(items)
    if n == 0:
        return float(_OBJECT_OVERHEAD)
    if n <= _SAMPLE_LIMIT:
        sample = items
    else:
        # Evenly strided sample rather than the first elements: a list
        # whose representations vary along its length (e.g. sparse then
        # dense segments) would otherwise be extrapolated from one regime
        # only. For homogeneous lists this matches the old estimate.
        step = n // _SAMPLE_LIMIT
        sample = items[::step][:_SAMPLE_LIMIT]
    if pair:
        sampled = sum(sim_sizeof(k) + sim_sizeof(v) + 2 * _REF_OVERHEAD
                      for k, v in sample)
    else:
        sampled = sum(sim_sizeof(v) + _REF_OVERHEAD for v in sample)
    if n <= _SAMPLE_LIMIT:
        return _OBJECT_OVERHEAD + sampled
    return _OBJECT_OVERHEAD + sampled * (n / len(sample))


def sim_dense_sizeof(value: Any) -> float:
    """Size of ``value`` in its *dense-equivalent* wire format.

    Adaptive aggregation objects declare ``__sim_dense_size__`` — the
    bytes they would occupy without the sparse encoding — which the
    analyzers use as the bytes-saved baseline. Falls back to
    :func:`sim_sizeof` for everything else.
    """
    declared = getattr(value, "__sim_dense_size__", None)
    if declared is not None:
        size = float(declared())
        if size < 0:
            raise ValueError(
                f"{type(value).__name__}.__sim_dense_size__ returned {size}")
        return size
    return sim_sizeof(value)


def representation_of(value: Any) -> str:
    """``"sparse"`` / ``"dense"`` for objects that declare it; else dense."""
    rep = getattr(value, "representation", None)
    return rep if isinstance(rep, str) else "dense"


def density_of(value: Any) -> float:
    """The object's declared nnz/length density (1.0 when undeclared)."""
    density = getattr(value, "density", None)
    if density is None:
        return 1.0
    try:
        return float(density)
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return 1.0
