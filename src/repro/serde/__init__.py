"""Serialization cost modelling: size estimation, scaled payloads, costs."""

from .cost import DEFAULT_SPARSE_POLICY, SerdeModel, SparsePolicy
from .payload import SizedPayload, segment_bounds, segment_range
from .sizeof import (
    SimSized,
    density_of,
    representation_of,
    sim_dense_sizeof,
    sim_sizeof,
)
from .sparse import (
    coalesce_chunks,
    densify_sparse,
    merge_sparse,
    scatter_into,
    slice_sparse,
    topk_indices,
    topk_sparsify,
)

__all__ = [
    "SerdeModel",
    "SparsePolicy",
    "DEFAULT_SPARSE_POLICY",
    "SizedPayload",
    "segment_bounds",
    "segment_range",
    "SimSized",
    "sim_sizeof",
    "sim_dense_sizeof",
    "representation_of",
    "density_of",
    "coalesce_chunks",
    "merge_sparse",
    "slice_sparse",
    "densify_sparse",
    "scatter_into",
    "topk_indices",
    "topk_sparsify",
]
