"""Serialization cost modelling: size estimation, scaled payloads, costs."""

from .cost import SerdeModel
from .payload import SizedPayload, segment_bounds, segment_range
from .sizeof import SimSized, sim_sizeof

__all__ = [
    "SerdeModel",
    "SizedPayload",
    "segment_bounds",
    "segment_range",
    "SimSized",
    "sim_sizeof",
]
