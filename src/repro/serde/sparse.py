"""Sparse (index, value) kernels shared by the adaptive aggregation path.

SparCML (Renggli et al.) and S2 Reducer (Ge et al.) represent sparse
reduction operands as sorted (index, value) pair arrays and switch to a
dense representation once partial sums densify. The kernels here are the
arithmetic core of that representation for this repo's adaptive
aggregators; they live in ``repro.serde`` because every layer above
(``ml``, ``core``, ``comm``) needs them and serde has no internal
dependencies.

Bit-identity contract: the adaptive sparse path must produce *bit-identical*
results to the dense reference. Two facts make that possible:

* every accumulation starts from ``+0.0`` and IEEE-754 addition of finite
  values is commutative bit-for-bit, so per-index totals do not depend on
  which representation holds them (``x + 0.0 == x`` bitwise for every
  ``x`` that can appear: ``-0.0`` can never be produced starting from
  ``+0.0``);
* :func:`coalesce_chunks` sums duplicate indices with ``np.add.at``, which
  is unbuffered and processes elements in order — per-index contributions
  are summed in exactly the insertion order a dense ``np.add.at`` scatter
  would have used.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "coalesce_chunks",
    "merge_sparse",
    "slice_sparse",
    "densify_sparse",
    "scatter_into",
    "topk_indices",
    "topk_sparsify",
]

_EMPTY_IDX = np.empty(0, dtype=np.int64)
_EMPTY_VAL = np.empty(0, dtype=np.float64)


def coalesce_chunks(index_chunks: Sequence[np.ndarray],
                    value_chunks: Sequence[np.ndarray]
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Sum a list of (index, value) chunks into one sorted deduplicated pair.

    Duplicate indices are summed in chunk-then-element order (the order the
    contributions were appended), matching the dense scatter history.
    """
    if len(index_chunks) != len(value_chunks):
        raise ValueError(
            f"{len(index_chunks)} index chunks vs {len(value_chunks)} "
            f"value chunks")
    if not index_chunks:
        return _EMPTY_IDX, _EMPTY_VAL
    idx = np.concatenate(index_chunks) if len(index_chunks) > 1 \
        else np.asarray(index_chunks[0], dtype=np.int64)
    vals = np.concatenate(value_chunks) if len(value_chunks) > 1 \
        else np.asarray(value_chunks[0], dtype=np.float64)
    if idx.size == 0:
        return _EMPTY_IDX, _EMPTY_VAL
    unique, inverse = np.unique(idx, return_inverse=True)
    totals = np.zeros(unique.size)
    np.add.at(totals, inverse, vals)
    return unique.astype(np.int64, copy=False), totals


def merge_sparse(a_idx: np.ndarray, a_vals: np.ndarray,
                 b_idx: np.ndarray, b_vals: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Sum two coalesced sparse operands into one coalesced pair."""
    return coalesce_chunks([a_idx, b_idx], [a_vals, b_vals])


def slice_sparse(idx: np.ndarray, vals: np.ndarray, lo: int, hi: int
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Entries with ``lo <= index < hi``, rebased to start at zero.

    ``idx`` must be sorted (the coalesced form); the window is found with
    two binary searches.
    """
    i0 = int(np.searchsorted(idx, lo, side="left"))
    i1 = int(np.searchsorted(idx, hi, side="left"))
    return idx[i0:i1] - lo, vals[i0:i1]


def densify_sparse(idx: np.ndarray, vals: np.ndarray,
                   length: int) -> np.ndarray:
    """A dense buffer holding a coalesced sparse operand.

    Plain assignment (not addition) into fresh zeros: the stored totals
    are placed bit-exactly.
    """
    out = np.zeros(int(length))
    out[idx] = vals
    return out


def scatter_into(dense: np.ndarray, idx: np.ndarray,
                 vals: np.ndarray) -> None:
    """In-place ``dense[idx] += vals`` with duplicate-safe ordering."""
    np.add.at(dense, idx, vals)


def topk_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest-magnitude entries, fully deterministic.

    Magnitude ties break toward the **lower index** (a total order, so two
    executors holding equal buffers always select the same coordinates);
    the result is sorted ascending, ready for the coalesced sparse form.
    """
    values = np.asarray(values, dtype=np.float64)
    k = int(k)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k >= values.size:
        return np.arange(values.size, dtype=np.int64)
    # lexsort's last key is primary: magnitude descending, index ascending
    order = np.lexsort((np.arange(values.size), -np.abs(values)))
    return np.sort(order[:k]).astype(np.int64, copy=False)


def topk_sparsify(values: np.ndarray, k: int
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Top-k sparsification with an exact carry: ``(idx, sent, residual)``.

    ``sent`` holds the k largest-magnitude entries (coalesced sparse form)
    and ``residual`` the unsent remainder, satisfying the residual-carry
    identity ``densify_sparse(idx, sent, n) + residual == values`` — the
    selected slots of the residual are zeroed, every other slot keeps its
    input bits, so error feedback loses nothing.
    """
    values = np.asarray(values, dtype=np.float64)
    idx = topk_indices(values, k)
    sent = values[idx]
    residual = values.copy()
    residual[idx] = 0.0
    return idx, sent, residual
