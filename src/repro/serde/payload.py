"""Size-scaled payloads: small physical arrays posing as paper-scale data.

The paper's micro-benchmarks move 256 MB aggregators between 48 executors;
materializing that physically would need tens of gigabytes on the test
machine. :class:`SizedPayload` holds a *real* NumPy array (so every merge,
split and concat in the pipeline is genuinely computed and checkable) while
declaring a larger *simulated* size through the ``__sim_size__`` protocol.
Splitting a payload splits both the physical array and the simulated size
proportionally, so segment costs stay exact.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["SizedPayload", "segment_bounds", "segment_range"]


class SizedPayload:
    """A NumPy vector with an independent simulated byte size.

    Parameters
    ----------
    data:
        Physical 1-D array; all arithmetic happens on it for real.
    sim_bytes:
        Simulated serialized size in bytes; defaults to ``data.nbytes``
        (scale factor 1).
    """

    __slots__ = ("data", "sim_bytes")

    def __init__(self, data: np.ndarray, sim_bytes: float | None = None):
        data = np.asarray(data)
        if data.ndim != 1:
            raise ValueError(f"payload must be 1-D, got shape {data.shape}")
        self.data = data
        self.sim_bytes = float(data.nbytes if sim_bytes is None else sim_bytes)
        if self.sim_bytes < 0:
            raise ValueError(f"negative simulated size: {self.sim_bytes}")

    # ------------------------------------------------------------- protocol
    def __sim_size__(self) -> float:
        return self.sim_bytes

    def __len__(self) -> int:
        return len(self.data)

    @property
    def scale(self) -> float:
        """Ratio of simulated to physical bytes."""
        if self.data.nbytes == 0:
            return 1.0
        return self.sim_bytes / self.data.nbytes

    # ------------------------------------------------------------ operations
    def merge(self, other: "SizedPayload") -> "SizedPayload":
        """Element-wise sum; simulated size is preserved (not doubled)."""
        if len(other.data) != len(self.data):
            raise ValueError(
                f"length mismatch: {len(self.data)} vs {len(other.data)}"
            )
        return SizedPayload(self.data + other.data,
                            max(self.sim_bytes, other.sim_bytes))

    def merge_inplace(self, other: "SizedPayload") -> "SizedPayload":
        """In-place element-wise sum (hot path; avoids a copy)."""
        if len(other.data) != len(self.data):
            raise ValueError(
                f"length mismatch: {len(self.data)} vs {len(other.data)}"
            )
        self.data += other.data
        self.sim_bytes = max(self.sim_bytes, other.sim_bytes)
        return self

    def split(self, index: int, num_segments: int) -> "SizedPayload":
        """Segment ``index`` of ``num_segments`` (contiguous block split).

        Returns a view-backed payload whose simulated size is the exact
        proportional share of this payload's simulated size.
        """
        if not 0 <= index < num_segments:
            raise IndexError(f"segment {index} of {num_segments}")
        n = len(self.data)
        lo, hi = segment_range(n, num_segments, index)
        frac = (hi - lo) / n if n else 0.0
        return SizedPayload(self.data[lo:hi], self.sim_bytes * frac)

    @staticmethod
    def concat(segments: Sequence["SizedPayload"]) -> "SizedPayload":
        """Concatenate segments back into a single payload."""
        if not segments:
            raise ValueError("cannot concatenate zero segments")
        data = np.concatenate([s.data for s in segments])
        return SizedPayload(data, sum(s.sim_bytes for s in segments))

    # Chunk protocol (pipelined_ring): a segment splits into elementwise
    # chunk columns and reassembles by concatenation. For a contiguous
    # array payload both directions coincide with the block split.
    chunk_split = split
    chunk_concat = concat

    def copy(self) -> "SizedPayload":
        """A deep copy (fresh physical array, same simulated size)."""
        return SizedPayload(self.data.copy(), self.sim_bytes)

    def __repr__(self) -> str:
        return (f"<SizedPayload n={len(self.data)} "
                f"sim_bytes={self.sim_bytes:.0f}>")


def segment_bounds(n: int, num_segments: int) -> list:
    """Split points dividing ``n`` elements into ``num_segments`` blocks.

    The first ``n % num_segments`` blocks get one extra element, matching
    the usual MPI block distribution.
    """
    if num_segments < 1:
        raise ValueError(f"num_segments must be >= 1, got {num_segments}")
    base, extra = divmod(n, num_segments)
    bounds = [0]
    for i in range(num_segments):
        bounds.append(bounds[-1] + base + (1 if i < extra else 0))
    return bounds


def segment_range(n: int, num_segments: int, index: int) -> tuple:
    """O(1) ``(lo, hi)`` of block ``index`` in the same distribution as
    :func:`segment_bounds` (hot path: splitting into hundreds of segments).
    """
    if num_segments < 1:
        raise ValueError(f"num_segments must be >= 1, got {num_segments}")
    if not 0 <= index < num_segments:
        raise IndexError(f"segment {index} of {num_segments}")
    base, extra = divmod(n, num_segments)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi
