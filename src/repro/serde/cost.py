"""Serialization / deserialization cost model.

Spark serializes a value whenever it leaves a JVM: task results on their way
to the driver, shuffle blocks, broadcast variables. Ousterhout et al. (NSDI
'15, cited by the paper in §3.2) showed this can dominate; the paper's
in-memory merge exists precisely to amortize it. The model here is linear
with a fixed setup cost:

    ser_time(B)   = ser_fixed + B / ser_bandwidth
    deser_time(B) = ser_fixed + B / deser_bandwidth

Both appear as virtual-time charges wherever the engine would really
serialize.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .sizeof import sim_sizeof

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.config import ClusterConfig

__all__ = ["SerdeModel"]


class SerdeModel:
    """Linear serialization cost model bound to a platform's constants."""

    def __init__(self, ser_bandwidth: float, deser_bandwidth: float,
                 fixed: float = 0.0):
        if ser_bandwidth <= 0 or deser_bandwidth <= 0:
            raise ValueError("serde bandwidths must be positive")
        if fixed < 0:
            raise ValueError(f"negative fixed cost: {fixed}")
        self.ser_bandwidth = float(ser_bandwidth)
        self.deser_bandwidth = float(deser_bandwidth)
        self.fixed = float(fixed)

    @classmethod
    def from_config(cls, config: "ClusterConfig") -> "SerdeModel":
        """A model with the platform's serialization constants."""
        return cls(config.ser_bandwidth, config.deser_bandwidth,
                   config.ser_fixed)

    # -------------------------------------------------------------- by bytes
    def ser_time_bytes(self, nbytes: float) -> float:
        """Time to serialize ``nbytes`` of payload."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        return self.fixed + nbytes / self.ser_bandwidth

    def deser_time_bytes(self, nbytes: float) -> float:
        """Time to deserialize ``nbytes`` of payload."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        return self.fixed + nbytes / self.deser_bandwidth

    def round_trip_bytes(self, nbytes: float) -> float:
        """Serialize + deserialize cost for ``nbytes``."""
        return self.ser_time_bytes(nbytes) + self.deser_time_bytes(nbytes)

    # -------------------------------------------------------------- by value
    def ser_time(self, value: Any) -> float:
        """Time to serialize ``value`` (size via :func:`sim_sizeof`)."""
        return self.ser_time_bytes(sim_sizeof(value))

    def deser_time(self, value: Any) -> float:
        """Time to deserialize ``value``."""
        return self.deser_time_bytes(sim_sizeof(value))

    def __repr__(self) -> str:
        return (f"<SerdeModel ser={self.ser_bandwidth:.3g}B/s "
                f"deser={self.deser_bandwidth:.3g}B/s fixed={self.fixed:g}s>")
