"""Serialization / deserialization cost model.

Spark serializes a value whenever it leaves a JVM: task results on their way
to the driver, shuffle blocks, broadcast variables. Ousterhout et al. (NSDI
'15, cited by the paper in §3.2) showed this can dominate; the paper's
in-memory merge exists precisely to amortize it. The model here is linear
with a fixed setup cost:

    ser_time(B)   = ser_fixed + B / ser_bandwidth
    deser_time(B) = ser_fixed + B / deser_bandwidth

Both appear as virtual-time charges wherever the engine would really
serialize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from .sizeof import sim_sizeof

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.config import ClusterConfig

__all__ = ["SerdeModel", "SparsePolicy", "DEFAULT_SPARSE_POLICY"]


@dataclass(frozen=True)
class SparsePolicy:
    """Density policy for the adaptive sparse aggregation path.

    Encodes the SparCML-style wire-format switch: a sparse operand costs
    ``nnz * (index_bytes + value_bytes)`` on the wire, a dense one
    ``length * dense_value_bytes``, so sparse wins while density stays
    below ``dense_value_bytes / (index_bytes + value_bytes)`` (0.5 with
    the 8-byte defaults). ``density_threshold`` separately controls when
    an accumulator *stores* itself densely (memory/kernel choice); it
    defaults to the wire break-even point so storage and wire format flip
    together.
    """

    density_threshold: float = 0.5
    index_bytes: float = 8.0
    value_bytes: float = 8.0
    dense_value_bytes: float = 8.0

    def __post_init__(self):
        if not 0.0 < self.density_threshold <= 1.0:
            raise ValueError(
                f"density_threshold must be in (0, 1]: "
                f"{self.density_threshold}")
        if min(self.index_bytes, self.value_bytes,
               self.dense_value_bytes) <= 0:
            raise ValueError("per-entry byte costs must be positive")

    # ------------------------------------------------------------ wire sizes
    def sparse_wire_bytes(self, nnz: int, scale: float = 1.0) -> float:
        """Simulated bytes of ``nnz`` (index, value) pairs on the wire."""
        return float(nnz) * (self.index_bytes + self.value_bytes) * scale

    def dense_wire_bytes(self, length: int, scale: float = 1.0) -> float:
        """Simulated bytes of a dense ``length``-vector on the wire."""
        return float(length) * self.dense_value_bytes * scale

    def wire_bytes(self, nnz: int, length: int, scale: float = 1.0) -> float:
        """Bytes of the cheaper wire format (the per-send switch)."""
        return min(self.sparse_wire_bytes(nnz, scale),
                   self.dense_wire_bytes(length, scale))

    # --------------------------------------------------------------- switches
    def prefer_sparse(self, nnz: int, length: int) -> bool:
        """True when the sparse wire format is strictly smaller."""
        return (self.sparse_wire_bytes(nnz)
                < self.dense_wire_bytes(length))

    def should_densify(self, nnz: int, length: int) -> bool:
        """True when an accumulator at this density should store densely."""
        return length > 0 and nnz >= self.density_threshold * length


#: the SparCML break-even policy (8-byte indices and values)
DEFAULT_SPARSE_POLICY = SparsePolicy()


class SerdeModel:
    """Linear serialization cost model bound to a platform's constants."""

    def __init__(self, ser_bandwidth: float, deser_bandwidth: float,
                 fixed: float = 0.0):
        if ser_bandwidth <= 0 or deser_bandwidth <= 0:
            raise ValueError("serde bandwidths must be positive")
        if fixed < 0:
            raise ValueError(f"negative fixed cost: {fixed}")
        self.ser_bandwidth = float(ser_bandwidth)
        self.deser_bandwidth = float(deser_bandwidth)
        self.fixed = float(fixed)

    @classmethod
    def from_config(cls, config: "ClusterConfig") -> "SerdeModel":
        """A model with the platform's serialization constants."""
        return cls(config.ser_bandwidth, config.deser_bandwidth,
                   config.ser_fixed)

    # -------------------------------------------------------------- by bytes
    def ser_time_bytes(self, nbytes: float) -> float:
        """Time to serialize ``nbytes`` of payload."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        return self.fixed + nbytes / self.ser_bandwidth

    def deser_time_bytes(self, nbytes: float) -> float:
        """Time to deserialize ``nbytes`` of payload."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        return self.fixed + nbytes / self.deser_bandwidth

    def round_trip_bytes(self, nbytes: float) -> float:
        """Serialize + deserialize cost for ``nbytes``."""
        return self.ser_time_bytes(nbytes) + self.deser_time_bytes(nbytes)

    # -------------------------------------------------------------- by value
    def ser_time(self, value: Any) -> float:
        """Time to serialize ``value`` (size via :func:`sim_sizeof`)."""
        return self.ser_time_bytes(sim_sizeof(value))

    def deser_time(self, value: Any) -> float:
        """Time to deserialize ``value``."""
        return self.deser_time_bytes(sim_sizeof(value))

    def __repr__(self) -> str:
        return (f"<SerdeModel ser={self.ser_bandwidth:.3g}B/s "
                f"deser={self.deser_bandwidth:.3g}B/s fixed={self.fixed:g}s>")
