"""Cluster configurations (paper Table 1) and calibrated platform constants.

The paper evaluates on two clusters:

* **BIC** — 8-node in-house cluster, 56 logical cores and 256 GB per node,
  100 Gbps InfiniBand (used as IPoIB, i.e. TCP/IP over IB), 6 executors per
  node with 4 cores / 30 GB each.
* **AWS** — 10 × m5d.24xlarge, 96 logical cores and 384 GB per node,
  25 Gbps Ethernet, 12 executors per node with 8 cores / 25 GB each.

The platform constants below are **calibrated to the paper's own
micro-measurements** rather than to the nominal hardware numbers, because
the paper shows that JVM TCP/IP throughput — not the physical link — is
what the system actually sees:

* Figure 13: MPI peaks at 1185.43 MB/s on BIC and a *single* scalable
  communicator channel reaches only about a third of that, with 4 parallel
  channels required to approach the line rate (97.1 %). We therefore model
  the node NIC as a ~1185 MB/s pool and cap each TCP stream at ~370 MB/s.
* Figure 12: one-way latencies — MPI 15.94 us, scalable communicator
  72.73 us, BlockManager messaging 3861.25 us. These are encoded as
  per-message software overheads of the three transports plus a small
  physical link latency.
* Ousterhout et al. (cited in §3.2) motivate the serialization overhead;
  we model JVM serialization at ~300 MB/s with a fixed per-value cost,
  which is what makes in-memory merge profitable.

All bandwidths are bytes/second, all times seconds, all sizes bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["ClusterConfig", "KB", "MB", "GB", "US", "MS"]

# Unit helpers used across the repository.
KB = 1024
MB = 1024 * KB
GB = 1024 * MB
US = 1e-6
MS = 1e-3


@dataclass(frozen=True)
class ClusterConfig:
    """Full description of a simulated cluster platform.

    Instances are immutable; derive variants with :meth:`with_nodes` or
    :func:`dataclasses.replace`.
    """

    # ---- identity / Table 1 rows ------------------------------------------
    name: str
    num_nodes: int
    cores_per_node: int
    memory_per_node: float  # bytes
    executors_per_node: int
    executor_cores: int
    executor_memory: float  # bytes

    # ---- network fabric ----------------------------------------------------
    #: aggregate TCP/IP throughput one node can drive (each direction)
    nic_bandwidth: float = 1185.43 * MB
    #: throughput cap of a single TCP stream (one socket pair)
    tcp_stream_bandwidth: float = 370.0 * MB
    #: one-way physical latency between two nodes
    inter_node_latency: float = 2.0 * US
    #: one-way latency between two endpoints on the same node (loopback)
    intra_node_latency: float = 0.7 * US
    #: aggregate bandwidth available to same-node transfers. JVM TCP over
    #: loopback, not raw memory bus: calibrated against the paper's Figure
    #: 15, whose 6-executor (single-node) 256 MB reduce-scatter takes
    #: 784 ms — ~1.3 GB of segment traffic at about 1.7 GB/s effective.
    loopback_bandwidth: float = 2.0 * GB
    #: effective rate of ONE JVM messaging channel on the loopback path
    #: (small socket buffers + copy pipeline). Figure 14 pins this down:
    #: 1-parallelism reduce-scatter is 3.06x slower than 8-parallelism on
    #: the hostname-sorted ring, where almost every hop is intra-node.
    loopback_stream_bandwidth: float = 100.0 * MB

    # ---- transports (per-message software overhead, one way) --------------
    #: MPI-grade stack (OSU reference measurement minus link latency)
    mpi_overhead: float = 13.9 * US
    #: scalable communicator (JeroMQ-grade JVM messaging)
    sc_overhead: float = 70.7 * US
    #: Spark BlockManager messaging adapted for point-to-point
    bm_overhead: float = 3859.0 * US

    # ---- serialization cost model ------------------------------------------
    #: JVM object serialization throughput (Kryo-grade on double arrays)
    ser_bandwidth: float = 500.0 * MB
    #: JVM object deserialization throughput (Kryo-grade on double arrays)
    deser_bandwidth: float = 1200.0 * MB
    #: fixed cost per serialized value (closure/stream setup)
    ser_fixed: float = 60.0 * US

    # ---- JVM garbage-collection penalty (Figure 13 unsmoothness) ----------
    # Calibrated so a 4-channel 256 MB transfer lands at 97.1% of the MPI
    # line rate, the paper's measured peak. Native (MPI) transports are
    # exempt (TransportSpec.gc_prone).
    #: per-byte GC drag applied to messages above ``gc_threshold``
    gc_per_byte: float = 0.13 / GB
    #: message size above which GC drag kicks in
    gc_threshold: float = 16 * MB

    # ---- compute -------------------------------------------------------------
    #: per-core element-wise merge/sum throughput on doubles (JVM-grade)
    merge_bandwidth: float = 1.6 * GB
    #: fixed scheduling + launch overhead per task
    task_overhead: float = 10.0 * MS
    #: per-job driver bookkeeping (DAG build, stage submission)
    driver_job_overhead: float = 20.0 * MS
    #: driver threads deserializing incoming task results (Spark's
    #: task-result-getter pool)
    driver_result_threads: int = 4

    # ---- extras --------------------------------------------------------------
    extras: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ derived
    @property
    def num_executors(self) -> int:
        """Total executors across the cluster."""
        return self.num_nodes * self.executors_per_node

    @property
    def total_cores(self) -> int:
        """Total executor cores across the cluster."""
        return self.num_executors * self.executor_cores

    def with_nodes(self, num_nodes: int) -> "ClusterConfig":
        """This platform with a different node count (strong-scaling runs)."""
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        return replace(self, num_nodes=num_nodes)

    def with_executors_per_node(self, executors_per_node: int,
                                executor_cores: int) -> "ClusterConfig":
        """This platform with a different executor layout per node."""
        if executors_per_node < 1 or executor_cores < 1:
            raise ValueError("executor layout values must be >= 1")
        return replace(self, executors_per_node=executors_per_node,
                       executor_cores=executor_cores)

    # ---------------------------------------------------------------- presets
    @staticmethod
    def bic(num_nodes: int = 8) -> "ClusterConfig":
        """The in-house BIC cluster (Table 1, left column)."""
        return ClusterConfig(
            name="BIC",
            num_nodes=num_nodes,
            cores_per_node=56,
            memory_per_node=256 * GB,
            executors_per_node=6,
            executor_cores=4,
            executor_memory=30 * GB,
            nic_bandwidth=1185.43 * MB,
            tcp_stream_bandwidth=370.0 * MB,
            inter_node_latency=2.0 * US,
        )

    @staticmethod
    def aws(num_nodes: int = 10) -> "ClusterConfig":
        """The EC2 m5d.24xlarge cluster (Table 1, right column)."""
        return ClusterConfig(
            name="AWS",
            num_nodes=num_nodes,
            cores_per_node=96,
            memory_per_node=384 * GB,
            executors_per_node=12,
            executor_cores=8,
            executor_memory=25 * GB,
            # 25 Gbps Ethernet: ~2.6 GB/s effective TCP aggregate; per-stream
            # caps around 650 MB/s on these instances.
            nic_bandwidth=2600.0 * MB,
            tcp_stream_bandwidth=650.0 * MB,
            inter_node_latency=15.0 * US,
        )

    @staticmethod
    def laptop(num_nodes: int = 2) -> "ClusterConfig":
        """A tiny platform for fast tests and the quickstart example."""
        return ClusterConfig(
            name="laptop",
            num_nodes=num_nodes,
            cores_per_node=4,
            memory_per_node=8 * GB,
            executors_per_node=2,
            executor_cores=2,
            executor_memory=2 * GB,
        )

    def validate(self) -> None:
        """Raise ``ValueError`` on physically meaningless configurations."""
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.executors_per_node * self.executor_cores > self.cores_per_node:
            raise ValueError(
                f"{self.name}: executor layout "
                f"{self.executors_per_node}x{self.executor_cores} cores "
                f"exceeds {self.cores_per_node} cores per node"
            )
        if self.executors_per_node * self.executor_memory > self.memory_per_node:
            raise ValueError(f"{self.name}: executor memory exceeds node memory")
        if self.tcp_stream_bandwidth > self.nic_bandwidth:
            raise ValueError(f"{self.name}: stream bandwidth above NIC bandwidth")
        for label, value in (
            ("nic_bandwidth", self.nic_bandwidth),
            ("tcp_stream_bandwidth", self.tcp_stream_bandwidth),
            ("loopback_bandwidth", self.loopback_bandwidth),
            ("ser_bandwidth", self.ser_bandwidth),
            ("deser_bandwidth", self.deser_bandwidth),
            ("merge_bandwidth", self.merge_bandwidth),
        ):
            if value <= 0:
                raise ValueError(f"{self.name}: {label} must be positive")
