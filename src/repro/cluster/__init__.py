"""Simulated cluster substrate: nodes, NICs, network fabric, placement.

This package replaces the paper's physical clusters (Table 1) with a
deterministic discrete-event model. See ``DESIGN.md`` §2 for the
substitution rationale and §4 for the timing model.
"""

from .config import GB, KB, MB, MS, US, ClusterConfig
from .network import Network
from .node import Node
from .placement import Cluster, ExecutorSlot

__all__ = [
    "ClusterConfig",
    "Network",
    "Node",
    "Cluster",
    "ExecutorSlot",
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
]
