"""Flow-level network model with max-min fair bandwidth sharing.

Packet-level simulation would be hopeless at the message counts of a
120-executor ring, and naive FIFO bandwidth queueing produces artifacts
(adding a parallel channel can *lengthen* a transfer). This module uses the
standard *fluid* abstraction instead: every in-flight transfer is a **flow**
with a remaining byte count, a set of capacity constraints (**links**: NIC
egress/ingress, loopback bus) and an optional per-flow rate cap (a single
TCP stream). Whenever the flow set changes, rates are recomputed by
**progressive filling** — the classic water-filling algorithm that yields
the unique max-min fair allocation — and projected completions are kept in
a heap. This is how concurrent TCP streams behave to first order, and it
is what the paper's Figures 13/14 (parallelism) and the driver-fetch
bottleneck depend on.

Scalability: max-min allocations decompose over *connected components* of
the flow-link sharing graph, so arrivals and departures only re-solve the
component they touch (a 120-executor ring has per-node components of a few
dozen flows, not one 500-flow system). Flow progress is settled lazily —
each flow carries the timestamp its ``remaining`` was last valid at — so
events cost O(component), not O(all flows).

Storage layout (structure-of-arrays): per-flow numeric state — remaining
bytes, rate, cap, settle timestamp, version — lives in slot-indexed
parallel columns instead of object attributes, and each flow carries a
fixed-width row of link slot ids (CSR incidence with uniform row width:
every topology we model crosses 1-2 links per flow). Small components are
solved by the scalar filling loop indexing the columns directly (plain
Python floats, no ufunc launch overhead); components of at least
:data:`_VEC_MIN` flows gather their column slices into contiguous float64
arrays and take the vectorized solver: one bulk settle, per-link member
counts from a single ``bincount`` over the incidence rows, and each
progressive-filling round as whole-array operations that freeze every
saturated flow in bulk. Both paths produce bit-identical allocations (see
``_reallocate_vec`` for the argument), so the threshold is purely a
host-speed knob.

Determinism: flows and links are visited in insertion order, ties in the
filling loop break toward the lowest-indexed link, and completion-heap
entries carry a per-flow version so stale projections are skipped.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..sim import Environment, Event
from ..sim.core import LAZY
from ..sim.events import TRIGGERED

__all__ = ["Link", "FlowNetwork"]

#: residual bytes below which a flow counts as complete
_COMPLETE_EPS = 1e-6
#: residual *time* below which a flow counts as complete (guards against
#: sub-epsilon byte residues at multi-GB/s rates spinning the timer)
_COMPLETE_TIME_EPS = 1e-9
#: relative tolerance in the filling loop
_RATE_EPS = 1e-9
#: slack when comparing heap times
_TIME_EPS = 1e-12

#: component size at which the vectorized solver takes over. The vector
#: path pays an O(n) gather out of the Python list columns plus ~50us of
#: ufunc launches per filling round, so it only beats the scalar loop
#: once whole-array rounds amortize that: measured on a 1-CPU dev host,
#: scalar wins at every size up to ~500 flows (4-9x at the 24-69-flow
#: components real topologies produce), and the vector path wins on
#: contended multi-round components from ~512 up (0.93x at 512, 0.78x
#: at 4096). Both paths are bit-identical, so this is purely a
#: host-speed knob.
_VEC_MIN = 512

#: initial slot-column capacity (doubles on demand)
_INITIAL_SLOTS = 64


class Link:
    """A capacity constraint shared by flows (NIC direction, memory bus).

    The ``_scratch_*`` slots are per-reallocation working storage (head
    room, member count) stamped with the owning reallocation's epoch —
    replacing two dict builds per reallocation with plain attribute writes
    on the handful of links a component touches.
    """

    __slots__ = ("name", "capacity", "_index",
                 "_scratch_epoch", "_scratch_room", "_scratch_count")
    _counter = itertools.count()

    def __init__(self, capacity: float, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self.name = name
        self._index = next(Link._counter)
        self._scratch_epoch = 0
        self._scratch_room = 0.0
        self._scratch_count = 0

    def __repr__(self) -> str:
        return f"<Link {self.name!r} {self.capacity:.4g}B/s>"


class _Flow:
    """Identity + topology of one transfer; numeric state lives in the
    network's slot columns (``FlowNetwork._col_*``) at index ``slot``."""

    __slots__ = ("flow_id", "slot", "cap", "links", "lslots", "event",
                 "_seen_epoch", "_dirty")

    def __init__(self, flow_id: int, slot: int, cap: float,
                 links: Sequence[Link], event: Event):
        self.flow_id = flow_id
        self.slot = slot
        self.cap = cap  # mirrored in _col_cap[slot] for the vector path
        self.links = tuple(links)
        self.lslots = ()  # link slot ids, -1 padded to the network's width
        self.event = event
        self._seen_epoch = 0  # component-traversal stamp
        self._dirty = False  # joined but not yet allocated (flush pending)


class FlowNetwork:
    """Tracks all in-flight transfers and fair-shares link bandwidth."""

    def __init__(self, env: Environment):
        self.env = env
        self._flows: Dict[int, _Flow] = {}
        #: flows currently crossing each link (insertion-ordered)
        self._link_flows: Dict[Link, Dict[int, _Flow]] = {}
        self._next_id = 0
        #: completion heap: (finish_time, seq, flow_id, flow_version)
        self._heap: List = []
        self._heap_seq = 0
        self._epoch = 0  # component-traversal / realloc-scratch stamp
        self._timer_version = 0
        self._armed_until: Optional[float] = None
        #: flows joined this instant whose components still need allocating
        self._dirty: List[_Flow] = []
        self._flush_pending = False
        #: completed-flow count, for instrumentation
        self.completed = 0

        # -- flow slot columns (structure-of-arrays) ------------------------
        # Plain Python lists: element reads are as cheap as attribute
        # lookups for the scalar solver, while the vectorized solver
        # gathers its component's slices into contiguous float64 arrays.
        self._free_slots: List[int] = list(range(_INITIAL_SLOTS - 1, -1, -1))
        self._col_rem: List[float] = [0.0] * _INITIAL_SLOTS
        self._col_rate: List[float] = [0.0] * _INITIAL_SLOTS
        self._col_cap: List[float] = [0.0] * _INITIAL_SLOTS
        self._col_last: List[float] = [0.0] * _INITIAL_SLOTS
        self._col_prev: List[float] = [0.0] * _INITIAL_SLOTS
        self._col_ver: List[int] = [0] * _INITIAL_SLOTS
        #: uniform link-incidence row width (grown if a wider flow appears)
        self._lid_width = 2

        # -- link slot columns ---------------------------------------------
        self._link_slot: Dict[Link, int] = {}
        self._link_cap: List[float] = []
        self._link_order: List[int] = []  # Link._index per slot
        self._n_links = 0

    # ------------------------------------------------------------- slot mgmt
    def _grow_slots(self) -> None:
        old = len(self._col_rem)
        self._col_rem.extend([0.0] * old)
        self._col_rate.extend([0.0] * old)
        self._col_cap.extend([0.0] * old)
        self._col_last.extend([0.0] * old)
        self._col_prev.extend([0.0] * old)
        self._col_ver.extend([0] * old)
        self._free_slots.extend(range(2 * old - 1, old - 1, -1))

    def _grow_lid_width(self, width: int) -> None:
        self._lid_width = width
        for flow in self._flows.values():
            pad = width - len(flow.lslots)
            if pad > 0:
                flow.lslots = flow.lslots + (-1,) * pad

    def _register_link(self, link: Link) -> int:
        slot = self._link_slot.get(link)
        if slot is None:
            slot = self._n_links
            self._link_slot[link] = slot
            self._link_cap.append(link.capacity)
            self._link_order.append(link._index)
            self._n_links += 1
        return slot

    # ----------------------------------------------------------------- public
    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flow(self, nbytes: float, links: Sequence[Link],
             rate_cap: Optional[float] = None) -> Event:
        """Start a transfer of ``nbytes`` through ``links``.

        Returns an event that fires (with the flow's id) when the last byte
        has been delivered. ``rate_cap`` bounds this flow's rate regardless
        of link headroom (a single TCP stream); ``None`` means uncapped.
        """
        if nbytes < 0:
            raise ValueError(f"negative flow size: {nbytes}")
        cap = math.inf if rate_cap is None else float(rate_cap)
        if cap <= 0:
            raise ValueError(f"rate cap must be positive, got {rate_cap}")
        event = self.env.event(name="flow")
        flow_id = self._next_id
        self._next_id += 1
        if nbytes == 0:
            event.succeed(flow_id)
            return event
        free = self._free_slots
        if not free:
            self._grow_slots()
            free = self._free_slots
        slot = free.pop()
        flow = _Flow(flow_id, slot, cap, links, event)
        self._col_rem[slot] = float(nbytes)
        self._col_rate[slot] = 0.0
        self._col_cap[slot] = cap
        self._col_last[slot] = self.env._now
        self._col_prev[slot] = 0.0
        self._col_ver[slot] = 0
        if len(flow.links) > self._lid_width:
            self._grow_lid_width(len(flow.links))
        lslots = tuple(self._register_link(link) for link in flow.links)
        if len(lslots) < self._lid_width:
            lslots = lslots + (-1,) * (self._lid_width - len(lslots))
        flow.lslots = lslots
        self._flows[flow_id] = flow
        for link in flow.links:
            self._link_flows.setdefault(link, {})[flow_id] = flow
        # Allocation is deferred to one end-of-instant flush: when N flows
        # join the same component at one instant (a ring iteration, a
        # broadcast wave, a driver fan-in), reallocating on every join
        # settles the same members N times for the same answer. Every
        # intermediate settle has dt == 0 — skipping it cannot move a
        # single float — and the flush recomputes the final allocation with
        # the same traversal order (seeded from the last join) the eager
        # scheme used, so rates, completion projections and virtual times
        # are bit-identical.
        flow._dirty = True
        self._dirty.append(flow)
        if not self._flush_pending:
            self._flush_pending = True
            flush = Event(self.env, name="flow-flush")
            flush._state = TRIGGERED
            flush.add_callback(self._flush)
            self.env.schedule(flush, 0.0, priority=LAZY)
        return event

    def set_link_capacity(self, link: Link, capacity: float) -> None:
        """Change ``link``'s capacity and re-share flows crossing it.

        Models in-place NIC degradation/restoration (a congested or rate-
        limited driver NIC): flows in the link's component are settled at
        the current instant and reallocated under the new capacity; flows
        elsewhere are untouched. No-op on the rates when the link is idle.
        """
        if capacity <= 0:
            raise ValueError(
                f"link capacity must be positive, got {capacity}")
        link.capacity = float(capacity)
        slot = self._link_slot.get(link)
        if slot is not None:
            self._link_cap[slot] = link.capacity
        if self._dirty:
            self._flush(None)
        members = self._link_flows.get(link)
        if members:
            component = self._component(list(members.values()))
            self._reallocate(component)
            self._arm_timer()

    def rate_of(self, event: Event) -> float:
        """Current rate of the flow behind ``event`` (testing hook)."""
        if self._dirty:
            self._flush(None)
        for flow in self._flows.values():
            if flow.event is event:
                return self._col_rate[flow.slot]
        raise KeyError("no active flow for that event")

    def link_rate(self, link: Link) -> float:
        """Aggregate allocated rate (bytes/s) crossing ``link`` right now.

        Read-only: used by NIC-utilization monitors; 0.0 for an idle link.
        """
        if self._dirty:
            self._flush(None)
        members = self._link_flows.get(link)
        if not members:
            return 0.0
        rate = self._col_rate
        return sum(rate[flow.slot] for flow in members.values())

    # --------------------------------------------------------------- internals
    def _flush(self, _event: Optional[Event]) -> None:
        """Allocate every component with joins pending from this instant.

        Components are discovered by scanning the dirty list in reverse so
        each traversal is seeded from its *last* joined flow — the seed the
        eager per-join scheme used for its final (and only rate-defining)
        reallocation — then reallocated in ascending last-join order, the
        order the eager scheme pushed its final completion projections in.
        A dirty flow whose component was already reallocated this instant
        (by a completion's neighbour pass, or an earlier seed here) has had
        its flag cleared and is skipped.
        """
        self._flush_pending = False
        if not self._dirty:
            return
        dirty, self._dirty = self._dirty, []
        flows = self._flows
        components: List[List[_Flow]] = []
        for i in range(len(dirty) - 1, -1, -1):
            flow = dirty[i]
            if not flow._dirty:
                continue
            if flow.flow_id not in flows:  # pragma: no cover - defensive
                flow._dirty = False
                continue
            component = self._component([flow])
            for member in component:
                member._dirty = False
            components.append(component)
        for component in reversed(components):
            self._reallocate(component)
        self._arm_timer()

    def _settle(self, flow: _Flow) -> None:
        now = self.env._now
        slot = flow.slot
        dt = now - self._col_last[slot]
        if dt > 0:
            remaining = self._col_rem[slot] - self._col_rate[slot] * dt
            self._col_rem[slot] = 0.0 if remaining < 0 else remaining
        self._col_last[slot] = now

    def _component(self, seeds: Sequence[_Flow]) -> List[_Flow]:
        """All flows transitively sharing a link with any of ``seeds``.

        Visited flows and links are marked by stamping them with a fresh
        traversal epoch — no per-call set/dict hashing (this runs on every
        flow arrival and departure).
        """
        epoch = self._epoch = self._epoch + 1
        found: List[_Flow] = []
        stack: List[_Flow] = list(seeds)
        flows = self._flows
        link_flows = self._link_flows
        while stack:
            flow = stack.pop()
            if flow._seen_epoch == epoch or flow.flow_id not in flows:
                continue
            flow._seen_epoch = epoch
            found.append(flow)
            for link in flow.links:
                if link._scratch_epoch == epoch:
                    continue
                link._scratch_epoch = epoch
                members = link_flows.get(link)
                if members:
                    stack.extend(members.values())
        return found

    def _reallocate(self, flows: List[_Flow]) -> None:
        """Progressive filling over one connected component.

        Settles every member first (their rates are about to change), then
        computes the max-min fair allocation and refreshes heap entries for
        flows whose rate changed. Components of :data:`_VEC_MIN`+ members
        take the vectorized solver; both paths are bit-identical, so the
        dispatch is invisible to the simulation.
        """
        if not flows:
            return
        if len(flows) >= _VEC_MIN and self._reallocate_vec(flows):
            return
        self._reallocate_scalar(flows)

    def _reallocate_scalar(self, flows: List[_Flow]) -> None:
        # Settle inline (same arithmetic as _settle, without 600k+ method
        # calls per run: reallocation settles every component member), and
        # build the per-link head room / member counts in the same pass.
        # Scratch lives in epoch-stamped link slots (``links`` keeps
        # first-touch order — the same order the old insertion-ordered
        # dicts iterated in).
        now = self.env._now
        col_rem = self._col_rem
        col_rate = self._col_rate
        col_last = self._col_last
        col_prev = self._col_prev
        epoch = self._epoch = self._epoch + 1
        links: List[Link] = []
        for flow in flows:
            slot = flow.slot
            dt = now - col_last[slot]
            rate = col_rate[slot]
            if dt > 0:
                remaining = col_rem[slot] - rate * dt
                col_rem[slot] = 0.0 if remaining < 0 else remaining
            col_last[slot] = now
            col_prev[slot] = rate
            flow._dirty = False  # this allocation covers any pending join
            for link in flow.links:
                if link._scratch_epoch != epoch:
                    link._scratch_epoch = epoch
                    link._scratch_room = link.capacity
                    link._scratch_count = 1
                    links.append(link)
                else:
                    link._scratch_count += 1

        # Fast path (the common ring case): every flow crosses the same
        # single link and no per-flow cap binds below the fair share.
        if len(links) == 1:
            link = links[0]
            share = link.capacity / link._scratch_count
            if all(f.links == (link,) and f.cap >= share for f in flows):
                col_ver = self._col_ver
                for flow in flows:
                    slot = flow.slot
                    if share != col_prev[slot]:
                        col_rate[slot] = share
                        col_ver[slot] += 1
                self._push_component_min(flows)
                return

        # First filling iteration without the ``unfrozen`` dict: the two
        # common whole-component exits (every stream TCP-capped below the
        # fair share — the ring case; one bottleneck covering the entire
        # component — the fan-in case) resolve here with two plain scans.
        # Arithmetic and tie-breaks are exactly the general loop's first
        # iteration, so the allocation is unchanged; the general loop below
        # re-derives the same first step when the component is mixed.
        min_share = math.inf
        bottleneck = None
        for link in links:
            share = link._scratch_room / link._scratch_count
            if (share < min_share - _RATE_EPS or
                    (abs(share - min_share) <= _RATE_EPS and
                     bottleneck is not None and
                     link._index < bottleneck._index)):
                min_share = share
                bottleneck = link
        threshold = min_share * (1 + _RATE_EPS)
        n_capped = 0
        for flow in flows:
            if flow.cap <= threshold:
                n_capped += 1
        if n_capped == len(flows):
            for flow in flows:
                if not math.isfinite(flow.cap) or flow.cap <= 0:
                    raise RuntimeError(
                        f"flow {flow.flow_id} allocated a "
                        f"non-positive rate {flow.cap!r}")
                col_rate[flow.slot] = flow.cap
            self._bump_changed(flows)
            self._push_component_min(flows)
            return
        if n_capped == 0 and bottleneck is not None:
            n_at = 0
            for flow in flows:
                if bottleneck in flow.links:
                    n_at += 1
            if n_at == len(flows):
                if not math.isfinite(min_share) or min_share <= 0:
                    raise RuntimeError(
                        f"non-positive fair share {min_share!r} "
                        f"on {bottleneck!r}")
                for flow in flows:
                    col_rate[flow.slot] = min_share
                self._bump_changed(flows)
                self._push_component_min(flows)
                return

        unfrozen = {flow.flow_id: flow for flow in flows}
        guard = 0
        while unfrozen:
            guard += 1
            if guard > 4 * len(flows) + 8:  # pragma: no cover - safety net
                raise RuntimeError("progressive filling failed to converge")
            min_share = math.inf
            bottleneck: Optional[Link] = None
            for link in links:
                count = link._scratch_count
                if count <= 0:
                    continue
                share = link._scratch_room / count
                if (share < min_share - _RATE_EPS or
                        (abs(share - min_share) <= _RATE_EPS and
                         bottleneck is not None and
                         link._index < bottleneck._index)):
                    min_share = share
                    bottleneck = link
            capped = [f for f in unfrozen.values()
                      if f.cap <= min_share * (1 + _RATE_EPS)]
            if capped:
                if len(capped) == len(unfrozen):
                    # Every remaining flow freezes at its own cap (the ring
                    # case: all streams TCP-capped below the fair share) —
                    # head-room bookkeeping can no longer affect anything.
                    for flow in capped:
                        if not math.isfinite(flow.cap) or flow.cap <= 0:
                            raise RuntimeError(
                                f"flow {flow.flow_id} allocated a "
                                f"non-positive rate {flow.cap!r}")
                        col_rate[flow.slot] = flow.cap
                    unfrozen.clear()
                    break
                for flow in capped:
                    self._freeze(flow, flow.cap, unfrozen)
                continue
            if bottleneck is None:
                for flow in list(unfrozen.values()):
                    self._freeze(flow, flow.cap, unfrozen)
                break
            at_bottleneck = [f for f in unfrozen.values()
                             if bottleneck in f.links]
            if len(at_bottleneck) == len(unfrozen):
                # The bottleneck covers every remaining flow: all freeze at
                # the same fair share and the loop is over.
                if not math.isfinite(min_share) or min_share <= 0:
                    raise RuntimeError(
                        f"non-positive fair share {min_share!r} "
                        f"on {bottleneck!r}")
                for flow in at_bottleneck:
                    col_rate[flow.slot] = min_share
                unfrozen.clear()
                break
            for flow in at_bottleneck:
                self._freeze(flow, min_share, unfrozen)

        self._bump_changed(flows)
        self._push_component_min(flows)

    def _bump_changed(self, flows: List[_Flow]) -> None:
        """Version-bump every flow whose rate moved this reallocation."""
        col_rate = self._col_rate
        col_prev = self._col_prev
        col_ver = self._col_ver
        for flow in flows:
            slot = flow.slot
            if col_rate[slot] != col_prev[slot]:
                col_ver[slot] += 1

    def _freeze(self, flow: _Flow, rate: float,
                unfrozen: Dict[int, _Flow]) -> None:
        if not math.isfinite(rate) or rate <= 0:
            raise RuntimeError(
                f"flow {flow.flow_id} allocated a non-positive rate {rate!r}")
        self._col_rate[flow.slot] = rate
        for link in flow.links:
            room = link._scratch_room - rate
            link._scratch_room = 0.0 if room < 0 else room
            link._scratch_count -= 1
        del unfrozen[flow.flow_id]

    # -------------------------------------------------- vectorized allocation
    def _reallocate_vec(self, flows: List[_Flow]) -> bool:
        """Whole-component progressive filling as array operations.

        Bit-identity with the scalar path, case by case:

        * **Settle**: ``remaining - rate*dt`` with ``dt = max(now-last, 0)``
          equals the scalar per-flow update — ``rate*0.0 == 0.0`` and
          ``x - 0.0 == x`` exactly for the non-negative values stored here,
          and ``last <= now`` is a kernel invariant, so masking ``dt <= 0``
          away is unnecessary.
        * **Link shares**: per-link member counts come from one ``bincount``
          over the incidence rows; room starts at capacity. Identical
          dividends/divisors → identical IEEE quotients.
        * **Bottleneck choice**: the scalar scan keeps the lowest
          ``Link._index`` among shares within ``_RATE_EPS`` of the running
          minimum. When every eps-candidate share is *exactly* the minimum
          (the only case that arises from equal-capacity links — at the
          magnitudes simulated, one ULP is ~100x the absolute epsilon) that
          is argmin-by-``_index`` over the candidates, which vectorizes.
          If candidates with unequal shares inside the eps window ever
          appear, the result could depend on scan order — the solver
          returns ``False`` and the caller re-runs the scalar path (the
          settle already applied is idempotent: re-settling at dt == 0
          changes nothing).
        * **Freeze rounds**: frozen flows' rates are subtracted from their
          links' head room with ``np.subtract.at`` over rows in flow order
          — ``subtract.at`` applies sequentially per index, matching the
          scalar subtraction order, and clamping the batch result to zero
          equals the scalar's per-step clamp because rates are positive
          (the partial sums decrease monotonically, so the batch result is
          negative iff any scalar step clamped).
        * **Completion push**: ``argmin`` returns the first minimum, which
          is the scalar strict-``<`` scan's winner.
        """
        now = self.env._now
        n = len(flows)
        col_rem = self._col_rem
        col_rate = self._col_rate
        col_cap = self._col_cap
        col_last = self._col_last
        slots = [0] * n
        prev_l = [0.0] * n
        for i, flow in enumerate(flows):
            slots[i] = flow.slot
            prev_l[i] = col_rate[flow.slot]
            flow._dirty = False
        prev = np.array(prev_l)
        rem = np.array([col_rem[s] for s in slots])
        cap = np.array([col_cap[s] for s in slots])
        dt = now - np.array([col_last[s] for s in slots])
        np.maximum(dt, 0.0, out=dt)
        rem -= prev * dt
        np.maximum(rem, 0.0, out=rem)
        for i, s in enumerate(slots):
            col_last[s] = now
        rem_l = rem.tolist()
        for i, s in enumerate(slots):
            col_rem[s] = rem_l[i]

        nl = self._n_links
        lids = np.array([f.lslots for f in flows], dtype=np.intp)
        valid = lids >= 0
        flat = lids[valid]
        counts = np.bincount(flat, minlength=nl).astype(np.float64)
        link_cap = np.array(self._link_cap)
        active = counts > 0.0

        # Single-link fast path, mirrored from the scalar solver with the
        # same precedence (it wins over the eps-capped classification for
        # caps inside the [share, share*(1+eps)] window).
        if int(np.count_nonzero(active)) == 1 and flat.size == n:
            lslot = int(np.argmax(active))
            share = link_cap[lslot] / counts[lslot]
            if bool((cap >= share).all()):
                rates = np.full(n, share)
                self._finish_vec(flows, slots, rates, prev_l, rem, now)
                return True

        inf = math.inf
        room = link_cap.copy()
        shares = np.full(nl, inf)
        np.divide(room, counts, out=shares, where=active)
        bslot, min_share = self._pick_bottleneck(shares, active)
        if bslot is None and min_share is False:
            return False  # eps-ambiguous tie: scalar fallback

        rates = np.empty(n)
        capped = cap <= min_share * (1 + _RATE_EPS)
        n_capped = int(np.count_nonzero(capped))
        if n_capped == n:
            self._check_rates(flows, cap, np.ones(n, dtype=bool))
            rates[:] = cap
            self._finish_vec(flows, slots, rates, prev_l, rem, now)
            return True
        if n_capped == 0 and bslot is not None:
            at = (lids == bslot).any(axis=1)
            if int(np.count_nonzero(at)) == n:
                if not math.isfinite(min_share) or min_share <= 0:
                    raise RuntimeError(
                        f"non-positive fair share {min_share!r} "
                        f"on slot {bslot}")
                rates[:] = min_share
                self._finish_vec(flows, slots, rates, prev_l, rem, now)
                return True

        unfrozen = np.ones(n, dtype=bool)
        n_unfrozen = n
        guard = 0
        while n_unfrozen:
            guard += 1
            if guard > 4 * n + 8:  # pragma: no cover - safety net
                raise RuntimeError("progressive filling failed to converge")
            active = counts > 0.0
            shares = np.full(nl, inf)
            np.divide(room, counts, out=shares, where=active)
            bslot, min_share = self._pick_bottleneck(shares, active)
            if bslot is None and min_share is False:
                return False  # ambiguity surfaced mid-solve: columns are
                # untouched beyond the idempotent settle, so the scalar
                # path re-derives the whole allocation from scratch.
            capped = unfrozen & (cap <= min_share * (1 + _RATE_EPS))
            n_capped = int(np.count_nonzero(capped))
            if n_capped:
                if n_capped == n_unfrozen:
                    self._check_rates(flows, cap, unfrozen)
                    rates[unfrozen] = cap[unfrozen]
                    break
                self._freeze_vec(flows, capped, cap[capped], rates,
                                 lids, room, counts)
                unfrozen &= ~capped
                n_unfrozen -= n_capped
                continue
            if bslot is None:
                # No link has members left (defensive, mirrors the scalar
                # branch): freeze the remainder at their caps.
                self._check_rates(flows, cap, unfrozen)
                rates[unfrozen] = cap[unfrozen]
                break
            at = unfrozen & (lids == bslot).any(axis=1)
            n_at = int(np.count_nonzero(at))
            if n_at == n_unfrozen:
                if not math.isfinite(min_share) or min_share <= 0:
                    raise RuntimeError(
                        f"non-positive fair share {min_share!r} "
                        f"on slot {bslot}")
                rates[unfrozen] = min_share
                break
            if not math.isfinite(min_share) or min_share <= 0:
                first = int(np.argmax(at))
                raise RuntimeError(
                    f"flow {flows[first].flow_id} allocated a "
                    f"non-positive rate {min_share!r}")
            freeze_rates = np.full(n_at, min_share)
            self._freeze_vec(flows, at, freeze_rates, rates,
                             lids, room, counts)
            unfrozen &= ~at
            n_unfrozen -= n_at

        self._finish_vec(flows, slots, rates, prev_l, rem, now)
        return True

    def _pick_bottleneck(self, shares: np.ndarray, active: np.ndarray):
        """Lowest-``Link._index`` holder of the minimum fair share.

        Returns ``(link_slot, min_share)``; ``(None, inf)`` when no link
        has members; ``(None, False)`` when candidates within the epsilon
        window have unequal shares (scan-order-dependent: scalar fallback).
        """
        if not active.any():
            return None, math.inf
        m = shares.min()
        cand = active & (shares <= m + _RATE_EPS)
        if not (shares[cand] == m).all():
            return None, False
        cand_slots = np.nonzero(cand)[0]
        order = np.array([self._link_order[i] for i in cand_slots])
        winner = cand_slots[np.argmin(order)]
        return int(winner), float(m)

    def _check_rates(self, flows: List[_Flow], rates: np.ndarray,
                     mask: np.ndarray) -> None:
        """Raise exactly like the scalar path on a non-positive rate."""
        bad = mask & ~(np.isfinite(rates) & (rates > 0))
        if bad.any():
            first = int(np.argmax(bad))
            raise RuntimeError(
                f"flow {flows[first].flow_id} allocated a "
                f"non-positive rate {float(rates[first])!r}")

    def _freeze_vec(self, flows: List[_Flow], mask: np.ndarray,
                    freeze_rates: np.ndarray, rates: np.ndarray,
                    lids: np.ndarray, room: np.ndarray,
                    counts: np.ndarray) -> None:
        """Freeze ``mask`` flows at ``freeze_rates``, updating head room
        and member counts in flow order (matches scalar subtraction)."""
        bad = ~(np.isfinite(freeze_rates) & (freeze_rates > 0))
        if bad.any():
            order = np.nonzero(mask)[0]
            first = int(order[np.argmax(bad)])
            raise RuntimeError(
                f"flow {flows[first].flow_id} allocated a "
                f"non-positive rate {float(freeze_rates[np.argmax(bad)])!r}")
        rates[mask] = freeze_rates
        rows = lids[mask]
        rvalid = rows >= 0
        rflat = rows[rvalid]
        per_entry = np.repeat(freeze_rates, rows.shape[1])[rvalid.ravel()]
        np.subtract.at(room, rflat, per_entry)
        np.maximum(room, 0.0, out=room)
        counts -= np.bincount(rflat, minlength=len(counts))

    def _finish_vec(self, flows: List[_Flow], slots: List[int],
                    rates: np.ndarray, prev_l: List[float],
                    rem: np.ndarray, now: float) -> None:
        """Scatter rates, bump versions of changed flows, push the
        component's earliest projected completion."""
        col_rate = self._col_rate
        col_ver = self._col_ver
        rates_l = rates.tolist()
        for i, s in enumerate(slots):
            r = rates_l[i]
            if r != prev_l[i]:
                col_rate[s] = r
                col_ver[s] += 1
        finish = now + rem / rates
        best = int(np.argmin(finish))
        slot = slots[best]
        self._heap_seq += 1
        heapq.heappush(self._heap,
                       (float(finish[best]), self._heap_seq,
                        flows[best].flow_id, col_ver[slot]))

    # -------------------------------------------------------------- completion
    def _push(self, flow: _Flow) -> None:
        slot = flow.slot
        finish = (self._col_last[slot]
                  + self._col_rem[slot] / self._col_rate[slot])
        self._heap_seq += 1
        heapq.heappush(self._heap,
                       (finish, self._heap_seq, flow.flow_id,
                        self._col_ver[slot]))

    def _push_component_min(self, flows: List[_Flow]) -> None:
        """Track only the component's earliest projected completion.

        Every completion triggers a reallocation of its component, which
        pushes the next minimum — so one live heap entry per component is
        enough to drive all of its completions in order, instead of one
        entry per flow per rate change.
        """
        col_rem = self._col_rem
        col_rate = self._col_rate
        col_last = self._col_last
        best = None
        best_finish = math.inf
        for flow in flows:
            slot = flow.slot
            finish = col_last[slot] + col_rem[slot] / col_rate[slot]
            if finish < best_finish:
                best_finish = finish
                best = flow
        if best is not None:
            self._heap_seq += 1
            heapq.heappush(self._heap, (best_finish, self._heap_seq,
                                        best.flow_id,
                                        self._col_ver[best.slot]))

    def _next_due(self) -> Optional[float]:
        """Earliest valid projected completion (pops stale entries)."""
        while self._heap:
            finish, _seq, flow_id, version = self._heap[0]
            flow = self._flows.get(flow_id)
            if flow is None or self._col_ver[flow.slot] != version:
                heapq.heappop(self._heap)
                continue
            return finish
        return None

    def _arm_timer(self) -> None:
        due = self._next_due()
        if due is None:
            return
        if (self._armed_until is not None
                and self._armed_until <= due + _TIME_EPS):
            return  # an earlier-or-equal wake-up is already scheduled
        self._timer_version += 1
        self._armed_until = due
        version = self._timer_version
        timer = self.env.timeout(max(due - self.env.now, 0.0))
        timer.add_callback(
            lambda _t, _v=version: self._on_timer(_v))

    def _on_timer(self, version: int) -> None:
        """Wake-up at a projected completion (runs as a timeout callback —
        a full kernel process per arm would triple the event count)."""
        if version != self._timer_version:
            return
        self._armed_until = None
        now = self.env.now
        col_rem = self._col_rem
        col_rate = self._col_rate
        col_ver = self._col_ver
        finished: List[_Flow] = []
        done_ids: Set[int] = set()
        while self._heap:
            finish, _seq, flow_id, entry_version = self._heap[0]
            if finish > now + _TIME_EPS:
                break
            heapq.heappop(self._heap)
            if flow_id in done_ids:  # duplicate valid entry for this flow
                continue
            flow = self._flows.get(flow_id)
            if flow is None or col_ver[flow.slot] != entry_version:
                continue
            self._settle(flow)
            slot = flow.slot
            if (col_rem[slot] <= _COMPLETE_EPS
                    or col_rem[slot] / col_rate[slot] <= _COMPLETE_TIME_EPS):
                finished.append(flow)
                done_ids.add(flow_id)
            else:  # numeric drift: re-project the residue
                col_ver[slot] += 1
                self._push(flow)
        if finished:
            neighbours: Dict[int, _Flow] = {}
            for flow in finished:
                del self._flows[flow.flow_id]
                self.completed += 1
                for link in flow.links:
                    members = self._link_flows.get(link)
                    if members is not None:
                        members.pop(flow.flow_id, None)
                        if not members:
                            del self._link_flows[link]
                        else:
                            neighbours.update(members)
            for flow in finished:
                self._free_slots.append(flow.slot)
                flow.event.succeed(flow.flow_id)
            if neighbours:
                # One realloc per affected component.
                remaining = dict(neighbours)
                while remaining:
                    fid, seed = remaining.popitem()
                    if fid not in self._flows:
                        continue  # the neighbour itself finished this round
                    component = self._component([seed])
                    self._reallocate(component)
                    for member in component:
                        remaining.pop(member.flow_id, None)
        self._arm_timer()

    def __repr__(self) -> str:
        return (f"<FlowNetwork active={len(self._flows)} "
                f"completed={self.completed}>")
