"""Flow-level network model with max-min fair bandwidth sharing.

Packet-level simulation would be hopeless at the message counts of a
120-executor ring, and naive FIFO bandwidth queueing produces artifacts
(adding a parallel channel can *lengthen* a transfer). This module uses the
standard *fluid* abstraction instead: every in-flight transfer is a **flow**
with a remaining byte count, a set of capacity constraints (**links**: NIC
egress/ingress, loopback bus) and an optional per-flow rate cap (a single
TCP stream). Whenever the flow set changes, rates are recomputed by
**progressive filling** — the classic water-filling algorithm that yields
the unique max-min fair allocation — and projected completions are kept in
a heap. This is how concurrent TCP streams behave to first order, and it
is what the paper's Figures 13/14 (parallelism) and the driver-fetch
bottleneck depend on.

Scalability: max-min allocations decompose over *connected components* of
the flow-link sharing graph, so arrivals and departures only re-solve the
component they touch (a 120-executor ring has per-node components of a few
dozen flows, not one 500-flow system). Flow progress is settled lazily —
each flow carries the timestamp its ``remaining`` was last valid at — so
events cost O(component), not O(all flows).

Determinism: flows and links are visited in insertion order, ties in the
filling loop break toward the lowest-indexed link, and completion-heap
entries carry a per-flow version so stale projections are skipped.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Sequence, Set

from ..sim import Environment, Event
from ..sim.core import LAZY
from ..sim.events import TRIGGERED

__all__ = ["Link", "FlowNetwork"]

#: residual bytes below which a flow counts as complete
_COMPLETE_EPS = 1e-6
#: residual *time* below which a flow counts as complete (guards against
#: sub-epsilon byte residues at multi-GB/s rates spinning the timer)
_COMPLETE_TIME_EPS = 1e-9
#: relative tolerance in the filling loop
_RATE_EPS = 1e-9
#: slack when comparing heap times
_TIME_EPS = 1e-12


class Link:
    """A capacity constraint shared by flows (NIC direction, memory bus).

    The ``_scratch_*`` slots are per-reallocation working storage (head
    room, member count) stamped with the owning reallocation's epoch —
    replacing two dict builds per reallocation with plain attribute writes
    on the handful of links a component touches.
    """

    __slots__ = ("name", "capacity", "_index",
                 "_scratch_epoch", "_scratch_room", "_scratch_count")
    _counter = itertools.count()

    def __init__(self, capacity: float, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self.name = name
        self._index = next(Link._counter)
        self._scratch_epoch = 0
        self._scratch_room = 0.0
        self._scratch_count = 0

    def __repr__(self) -> str:
        return f"<Link {self.name!r} {self.capacity:.4g}B/s>"


class _Flow:
    __slots__ = ("flow_id", "remaining", "cap", "links", "event", "rate",
                 "last", "version", "_seen_epoch", "_prev_rate", "_dirty")

    def __init__(self, flow_id: int, nbytes: float, cap: float,
                 links: Sequence[Link], event: Event, now: float):
        self.flow_id = flow_id
        self.remaining = float(nbytes)
        self.cap = cap
        self.links = tuple(links)
        self.event = event
        self.rate = 0.0
        self.last = now  # timestamp `remaining` was last settled at
        self.version = 0
        self._seen_epoch = 0  # component-traversal stamp
        self._prev_rate = 0.0  # rate before the current reallocation
        self._dirty = False  # joined but not yet allocated (flush pending)


class FlowNetwork:
    """Tracks all in-flight transfers and fair-shares link bandwidth."""

    def __init__(self, env: Environment):
        self.env = env
        self._flows: Dict[int, _Flow] = {}
        #: flows currently crossing each link (insertion-ordered)
        self._link_flows: Dict[Link, Dict[int, _Flow]] = {}
        self._next_id = 0
        #: completion heap: (finish_time, seq, flow_id, flow_version)
        self._heap: List = []
        self._heap_seq = 0
        self._epoch = 0  # component-traversal / realloc-scratch stamp
        self._timer_version = 0
        self._armed_until: Optional[float] = None
        #: flows joined this instant whose components still need allocating
        self._dirty: List[_Flow] = []
        self._flush_pending = False
        #: completed-flow count, for instrumentation
        self.completed = 0

    # ----------------------------------------------------------------- public
    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flow(self, nbytes: float, links: Sequence[Link],
             rate_cap: Optional[float] = None) -> Event:
        """Start a transfer of ``nbytes`` through ``links``.

        Returns an event that fires (with the flow's id) when the last byte
        has been delivered. ``rate_cap`` bounds this flow's rate regardless
        of link headroom (a single TCP stream); ``None`` means uncapped.
        """
        if nbytes < 0:
            raise ValueError(f"negative flow size: {nbytes}")
        cap = math.inf if rate_cap is None else float(rate_cap)
        if cap <= 0:
            raise ValueError(f"rate cap must be positive, got {rate_cap}")
        event = self.env.event(name="flow")
        flow_id = self._next_id
        self._next_id += 1
        if nbytes == 0:
            event.succeed(flow_id)
            return event
        flow = _Flow(flow_id, nbytes, cap, links, event, self.env.now)
        self._flows[flow_id] = flow
        for link in flow.links:
            self._link_flows.setdefault(link, {})[flow_id] = flow
        # Allocation is deferred to one end-of-instant flush: when N flows
        # join the same component at one instant (a ring iteration, a
        # broadcast wave, a driver fan-in), reallocating on every join
        # settles the same members N times for the same answer. Every
        # intermediate settle has dt == 0 — skipping it cannot move a
        # single float — and the flush recomputes the final allocation with
        # the same traversal order (seeded from the last join) the eager
        # scheme used, so rates, completion projections and virtual times
        # are bit-identical.
        flow._dirty = True
        self._dirty.append(flow)
        if not self._flush_pending:
            self._flush_pending = True
            flush = Event(self.env, name="flow-flush")
            flush._state = TRIGGERED
            flush.add_callback(self._flush)
            self.env.schedule(flush, 0.0, priority=LAZY)
        return event

    def set_link_capacity(self, link: Link, capacity: float) -> None:
        """Change ``link``'s capacity and re-share flows crossing it.

        Models in-place NIC degradation/restoration (a congested or rate-
        limited driver NIC): flows in the link's component are settled at
        the current instant and reallocated under the new capacity; flows
        elsewhere are untouched. No-op on the rates when the link is idle.
        """
        if capacity <= 0:
            raise ValueError(
                f"link capacity must be positive, got {capacity}")
        link.capacity = float(capacity)
        if self._dirty:
            self._flush(None)
        members = self._link_flows.get(link)
        if members:
            component = self._component(list(members.values()))
            self._reallocate(component)
            self._arm_timer()

    def rate_of(self, event: Event) -> float:
        """Current rate of the flow behind ``event`` (testing hook)."""
        if self._dirty:
            self._flush(None)
        for flow in self._flows.values():
            if flow.event is event:
                return flow.rate
        raise KeyError("no active flow for that event")

    def link_rate(self, link: Link) -> float:
        """Aggregate allocated rate (bytes/s) crossing ``link`` right now.

        Read-only: used by NIC-utilization monitors; 0.0 for an idle link.
        """
        if self._dirty:
            self._flush(None)
        members = self._link_flows.get(link)
        if not members:
            return 0.0
        return sum(flow.rate for flow in members.values())

    # --------------------------------------------------------------- internals
    def _flush(self, _event: Optional[Event]) -> None:
        """Allocate every component with joins pending from this instant.

        Components are discovered by scanning the dirty list in reverse so
        each traversal is seeded from its *last* joined flow — the seed the
        eager per-join scheme used for its final (and only rate-defining)
        reallocation — then reallocated in ascending last-join order, the
        order the eager scheme pushed its final completion projections in.
        A dirty flow whose component was already reallocated this instant
        (by a completion's neighbour pass, or an earlier seed here) has had
        its flag cleared and is skipped.
        """
        self._flush_pending = False
        if not self._dirty:
            return
        dirty, self._dirty = self._dirty, []
        flows = self._flows
        components: List[List[_Flow]] = []
        for i in range(len(dirty) - 1, -1, -1):
            flow = dirty[i]
            if not flow._dirty:
                continue
            if flow.flow_id not in flows:  # pragma: no cover - defensive
                flow._dirty = False
                continue
            component = self._component([flow])
            for member in component:
                member._dirty = False
            components.append(component)
        for component in reversed(components):
            self._reallocate(component)
        self._arm_timer()

    def _settle(self, flow: _Flow) -> None:
        now = self.env.now
        dt = now - flow.last
        if dt > 0:
            flow.remaining -= flow.rate * dt
            if flow.remaining < 0:
                flow.remaining = 0.0
        flow.last = now

    def _component(self, seeds: Sequence[_Flow]) -> List[_Flow]:
        """All flows transitively sharing a link with any of ``seeds``.

        Visited flows and links are marked by stamping them with a fresh
        traversal epoch — no per-call set/dict hashing (this runs on every
        flow arrival and departure).
        """
        epoch = self._epoch = self._epoch + 1
        found: List[_Flow] = []
        stack: List[_Flow] = list(seeds)
        flows = self._flows
        link_flows = self._link_flows
        while stack:
            flow = stack.pop()
            if flow._seen_epoch == epoch or flow.flow_id not in flows:
                continue
            flow._seen_epoch = epoch
            found.append(flow)
            for link in flow.links:
                if link._scratch_epoch == epoch:
                    continue
                link._scratch_epoch = epoch
                members = link_flows.get(link)
                if members:
                    stack.extend(members.values())
        return found

    def _reallocate(self, flows: List[_Flow]) -> None:
        """Progressive filling over one connected component.

        Settles every member first (their rates are about to change), then
        computes the max-min fair allocation and refreshes heap entries for
        flows whose rate changed.
        """
        if not flows:
            return
        # Settle inline (same arithmetic as _settle, without 600k+ method
        # calls per run: reallocation settles every component member), and
        # build the per-link head room / member counts in the same pass.
        # Scratch lives in epoch-stamped link slots (``links`` keeps
        # first-touch order — the same order the old insertion-ordered
        # dicts iterated in).
        now = self.env._now
        epoch = self._epoch = self._epoch + 1
        links: List[Link] = []
        for flow in flows:
            dt = now - flow.last
            if dt > 0:
                remaining = flow.remaining - flow.rate * dt
                flow.remaining = 0.0 if remaining < 0 else remaining
            flow.last = now
            flow._prev_rate = flow.rate
            flow._dirty = False  # this allocation covers any pending join
            for link in flow.links:
                if link._scratch_epoch != epoch:
                    link._scratch_epoch = epoch
                    link._scratch_room = link.capacity
                    link._scratch_count = 1
                    links.append(link)
                else:
                    link._scratch_count += 1

        # Fast path (the common ring case): every flow crosses the same
        # single link and no per-flow cap binds below the fair share.
        if len(links) == 1:
            link = links[0]
            share = link.capacity / link._scratch_count
            if all(f.links == (link,) and f.cap >= share for f in flows):
                for flow in flows:
                    if share != flow._prev_rate:
                        flow.rate = share
                        flow.version += 1
                self._push_component_min(flows)
                return

        # First filling iteration without the ``unfrozen`` dict: the two
        # common whole-component exits (every stream TCP-capped below the
        # fair share — the ring case; one bottleneck covering the entire
        # component — the fan-in case) resolve here with two plain scans.
        # Arithmetic and tie-breaks are exactly the general loop's first
        # iteration, so the allocation is unchanged; the general loop below
        # re-derives the same first step when the component is mixed.
        min_share = math.inf
        bottleneck = None
        for link in links:
            share = link._scratch_room / link._scratch_count
            if (share < min_share - _RATE_EPS or
                    (abs(share - min_share) <= _RATE_EPS and
                     bottleneck is not None and
                     link._index < bottleneck._index)):
                min_share = share
                bottleneck = link
        threshold = min_share * (1 + _RATE_EPS)
        n_capped = 0
        for flow in flows:
            if flow.cap <= threshold:
                n_capped += 1
        if n_capped == len(flows):
            for flow in flows:
                if not math.isfinite(flow.cap) or flow.cap <= 0:
                    raise RuntimeError(
                        f"flow {flow.flow_id} allocated a "
                        f"non-positive rate {flow.cap!r}")
                flow.rate = flow.cap
            for flow in flows:
                if flow.rate != flow._prev_rate:
                    flow.version += 1
            self._push_component_min(flows)
            return
        if n_capped == 0 and bottleneck is not None:
            n_at = 0
            for flow in flows:
                if bottleneck in flow.links:
                    n_at += 1
            if n_at == len(flows):
                if not math.isfinite(min_share) or min_share <= 0:
                    raise RuntimeError(
                        f"non-positive fair share {min_share!r} "
                        f"on {bottleneck!r}")
                for flow in flows:
                    flow.rate = min_share
                for flow in flows:
                    if flow.rate != flow._prev_rate:
                        flow.version += 1
                self._push_component_min(flows)
                return

        unfrozen = {flow.flow_id: flow for flow in flows}
        guard = 0
        while unfrozen:
            guard += 1
            if guard > 4 * len(flows) + 8:  # pragma: no cover - safety net
                raise RuntimeError("progressive filling failed to converge")
            min_share = math.inf
            bottleneck: Optional[Link] = None
            for link in links:
                count = link._scratch_count
                if count <= 0:
                    continue
                share = link._scratch_room / count
                if (share < min_share - _RATE_EPS or
                        (abs(share - min_share) <= _RATE_EPS and
                         bottleneck is not None and
                         link._index < bottleneck._index)):
                    min_share = share
                    bottleneck = link
            capped = [f for f in unfrozen.values()
                      if f.cap <= min_share * (1 + _RATE_EPS)]
            if capped:
                if len(capped) == len(unfrozen):
                    # Every remaining flow freezes at its own cap (the ring
                    # case: all streams TCP-capped below the fair share) —
                    # head-room bookkeeping can no longer affect anything.
                    for flow in capped:
                        if not math.isfinite(flow.cap) or flow.cap <= 0:
                            raise RuntimeError(
                                f"flow {flow.flow_id} allocated a "
                                f"non-positive rate {flow.cap!r}")
                        flow.rate = flow.cap
                    unfrozen.clear()
                    break
                for flow in capped:
                    self._freeze(flow, flow.cap, unfrozen)
                continue
            if bottleneck is None:
                for flow in list(unfrozen.values()):
                    self._freeze(flow, flow.cap, unfrozen)
                break
            at_bottleneck = [f for f in unfrozen.values()
                             if bottleneck in f.links]
            if len(at_bottleneck) == len(unfrozen):
                # The bottleneck covers every remaining flow: all freeze at
                # the same fair share and the loop is over.
                if not math.isfinite(min_share) or min_share <= 0:
                    raise RuntimeError(
                        f"non-positive fair share {min_share!r} "
                        f"on {bottleneck!r}")
                for flow in at_bottleneck:
                    flow.rate = min_share
                unfrozen.clear()
                break
            for flow in at_bottleneck:
                self._freeze(flow, min_share, unfrozen)

        for flow in flows:
            if flow.rate != flow._prev_rate:
                flow.version += 1
        self._push_component_min(flows)

    @staticmethod
    def _freeze(flow: _Flow, rate: float,
                unfrozen: Dict[int, _Flow]) -> None:
        if not math.isfinite(rate) or rate <= 0:
            raise RuntimeError(
                f"flow {flow.flow_id} allocated a non-positive rate {rate!r}")
        flow.rate = rate
        for link in flow.links:
            room = link._scratch_room - rate
            link._scratch_room = 0.0 if room < 0 else room
            link._scratch_count -= 1
        del unfrozen[flow.flow_id]

    # -------------------------------------------------------------- completion
    def _push(self, flow: _Flow) -> None:
        finish = flow.last + flow.remaining / flow.rate
        self._heap_seq += 1
        heapq.heappush(self._heap,
                       (finish, self._heap_seq, flow.flow_id, flow.version))

    def _push_component_min(self, flows: List[_Flow]) -> None:
        """Track only the component's earliest projected completion.

        Every completion triggers a reallocation of its component, which
        pushes the next minimum — so one live heap entry per component is
        enough to drive all of its completions in order, instead of one
        entry per flow per rate change.
        """
        best = None
        best_finish = math.inf
        for flow in flows:
            finish = flow.last + flow.remaining / flow.rate
            if finish < best_finish:
                best_finish = finish
                best = flow
        if best is not None:
            self._heap_seq += 1
            heapq.heappush(self._heap, (best_finish, self._heap_seq,
                                        best.flow_id, best.version))

    def _next_due(self) -> Optional[float]:
        """Earliest valid projected completion (pops stale entries)."""
        while self._heap:
            finish, _seq, flow_id, version = self._heap[0]
            flow = self._flows.get(flow_id)
            if flow is None or flow.version != version:
                heapq.heappop(self._heap)
                continue
            return finish
        return None

    def _arm_timer(self) -> None:
        due = self._next_due()
        if due is None:
            return
        if (self._armed_until is not None
                and self._armed_until <= due + _TIME_EPS):
            return  # an earlier-or-equal wake-up is already scheduled
        self._timer_version += 1
        self._armed_until = due
        version = self._timer_version
        timer = self.env.timeout(max(due - self.env.now, 0.0))
        timer.add_callback(
            lambda _t, _v=version: self._on_timer(_v))

    def _on_timer(self, version: int) -> None:
        """Wake-up at a projected completion (runs as a timeout callback —
        a full kernel process per arm would triple the event count)."""
        if version != self._timer_version:
            return
        self._armed_until = None
        now = self.env.now
        finished: List[_Flow] = []
        done_ids: Set[int] = set()
        while self._heap:
            finish, _seq, flow_id, entry_version = self._heap[0]
            if finish > now + _TIME_EPS:
                break
            heapq.heappop(self._heap)
            if flow_id in done_ids:  # duplicate valid entry for this flow
                continue
            flow = self._flows.get(flow_id)
            if flow is None or flow.version != entry_version:
                continue
            self._settle(flow)
            if (flow.remaining <= _COMPLETE_EPS
                    or flow.remaining / flow.rate <= _COMPLETE_TIME_EPS):
                finished.append(flow)
                done_ids.add(flow_id)
            else:  # numeric drift: re-project the residue
                flow.version += 1
                self._push(flow)
        if finished:
            neighbours: Dict[int, _Flow] = {}
            for flow in finished:
                del self._flows[flow.flow_id]
                self.completed += 1
                for link in flow.links:
                    members = self._link_flows.get(link)
                    if members is not None:
                        members.pop(flow.flow_id, None)
                        if not members:
                            del self._link_flows[link]
                        else:
                            neighbours.update(members)
            for flow in finished:
                flow.event.succeed(flow.flow_id)
            if neighbours:
                # One realloc per affected component.
                remaining = dict(neighbours)
                while remaining:
                    fid, seed = remaining.popitem()
                    if fid not in self._flows:
                        continue  # the neighbour itself finished this round
                    component = self._component([seed])
                    self._reallocate(component)
                    for member in component:
                        remaining.pop(member.flow_id, None)
        self._arm_timer()

    def __repr__(self) -> str:
        return (f"<FlowNetwork active={len(self._flows)} "
                f"completed={self.completed}>")
