"""The network fabric: latency + fair-shared-bandwidth transfer processes.

A transfer between two endpoints is a simulated process that

1. pays the transport's per-message software ``overhead`` at the sender,
2. pays the one-way physical ``latency`` of the path,
3. moves its bytes as a :class:`~repro.cluster.flows.FlowNetwork` flow
   crossing the sender's NIC egress link *and* the receiver's NIC ingress
   link (or the node's loopback link when both endpoints share a node),
   rate-capped by the per-stream TCP limit,
4. pays a GC drag term for very large messages (JVM behaviour the paper
   observes in Figure 13).

Because NIC links are max-min fair-shared, hotspots emerge naturally: N
executors fetching results into the driver split the driver's ingress
bandwidth N ways; a ring whose neighbours live on the same node barely
touches the NICs at all (topology awareness, Figure 14); parallel channels
add throughput until the NIC saturates (Figure 13).
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from ..sim import Environment
from ..sim.events import Event, all_of
from .config import ClusterConfig
from .flows import FlowNetwork
from .node import Node

__all__ = ["Network"]


class Network:
    """Moves bytes between :class:`~repro.cluster.node.Node` endpoints."""

    def __init__(self, env: Environment, config: ClusterConfig):
        self.env = env
        self.config = config
        self.flows = FlowNetwork(env)
        #: total bytes moved, for instrumentation
        self.bytes_transferred = 0.0
        #: total messages sent
        self.messages = 0
        #: bytes that crossed a physical link (inter-node only)
        self.inter_node_bytes = 0.0

    # ------------------------------------------------------------------ misc
    def latency(self, src: Node, dst: Node) -> float:
        """One-way physical latency of the ``src`` → ``dst`` path."""
        if src.node_id == dst.node_id:
            return self.config.intra_node_latency
        return self.config.inter_node_latency

    def gc_drag(self, nbytes: float) -> float:
        """JVM garbage-collection penalty for a message of ``nbytes``."""
        excess = nbytes - self.config.gc_threshold
        if excess <= 0:
            return 0.0
        return excess * self.config.gc_per_byte

    # -------------------------------------------------------------- transfer
    def transfer(self, src: Node, dst: Node, nbytes: float, *,
                 stream_bandwidth: Optional[float] = None,
                 loopback_stream_bandwidth: Optional[float] = None,
                 overhead: float = 0.0,
                 gc_prone: bool = True,
                 ) -> Generator:
        """Simulated process: move ``nbytes`` from ``src`` to ``dst``.

        ``stream_bandwidth`` caps the transfer's rate (a single TCP stream);
        ``None`` uses the platform's default stream cap. ``overhead`` is the
        transport's per-message software cost, paid up front. ``gc_prone``
        applies the JVM GC drag for large messages; native stacks (MPI)
        pass False.

        Yields kernel events; completes when the last byte has arrived.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        env = self.env
        cfg = self.config
        self.messages += 1
        self.bytes_transferred += nbytes

        # Software overhead and physical latency as one kernel event.
        yield env.timeout(overhead + self.latency(src, dst))
        if nbytes == 0:
            return

        if src.node_id == dst.node_id:
            # Same-node transfer through the shared loopback path; JVM
            # messaging stacks additionally cap each channel's rate.
            yield self.flows.flow(nbytes, links=[src.loopback],
                                  rate_cap=loopback_stream_bandwidth)
        else:
            self.inter_node_bytes += nbytes
            rate_cap = stream_bandwidth or cfg.tcp_stream_bandwidth
            yield self.flows.flow(nbytes,
                                  links=[src.nic_out, dst.nic_in],
                                  rate_cap=rate_cap)

        if gc_prone:
            drag = self.gc_drag(nbytes)
            if drag > 0:
                yield env.timeout(drag)

    def transfer_many(self, legs: Sequence, *,
                      stream_bandwidth: Optional[float] = None,
                      loopback_stream_bandwidth: Optional[float] = None,
                      overhead: float = 0.0,
                      gc_prone: bool = True,
                      ) -> Generator:
        """Simulated process: move N concurrent streams with O(1) processes.

        ``legs`` is a sequence of ``(src, dst, nbytes)`` tuples, each priced
        exactly like an independent :meth:`transfer` (per-message overhead,
        path latency, fair-shared flow, GC drag), but the whole batch is one
        kernel process instead of N: per-leg completion is tracked with
        plain events and flow callbacks. Completes when the last leg's last
        byte (plus its GC drag) has arrived — the same instant the slowest
        of N independent ``transfer`` processes would have finished, since
        max-min fair allocations at an instant are independent of the order
        in which same-instant flows join the network.
        """
        env = self.env
        cfg = self.config
        starts = []  # (start_delay, src, dst, nbytes)
        for src, dst, nbytes in legs:
            if nbytes < 0:
                raise ValueError(f"negative transfer size: {nbytes}")
            self.messages += 1
            self.bytes_transferred += nbytes
            starts.append((overhead + self.latency(src, dst),
                           src, dst, nbytes))
        if not starts:
            return
        # Release flows in start-time order, advancing the clock once per
        # distinct overhead+latency value (at most a few groups: same-node
        # vs inter-node paths). All group timers are created up front at the
        # batch's start instant so each group begins at exactly
        # ``now + (overhead + latency)`` — the same single float addition an
        # independent ``transfer`` process would have performed (chaining
        # relative timeouts instead would drift the start times by 1 ulp).
        starts.sort(key=lambda leg: leg[0])
        timers = {}
        for delay, _src, _dst, _nbytes in starts:
            if delay > 0 and delay not in timers:
                timers[delay] = env.timeout(delay)
        done: list = []
        elapsed = 0.0
        for delay, src, dst, nbytes in starts:
            if delay > elapsed:
                yield timers[delay]
                elapsed = delay
            if nbytes == 0:
                marker = Event(env)
                marker.succeed(None)
                done.append(marker)
                continue
            if src.node_id == dst.node_id:
                flow = self.flows.flow(nbytes, links=[src.loopback],
                                       rate_cap=loopback_stream_bandwidth)
            else:
                self.inter_node_bytes += nbytes
                rate_cap = stream_bandwidth or cfg.tcp_stream_bandwidth
                flow = self.flows.flow(nbytes,
                                       links=[src.nic_out, dst.nic_in],
                                       rate_cap=rate_cap)
            drag = self.gc_drag(nbytes) if gc_prone else 0.0
            if drag > 0:
                # Chain the GC pause after the flow without a process: when
                # the flow fires, a drag timeout succeeds the leg's marker.
                marker = Event(env)

                def _after(_flow, _drag=drag, _marker=marker):
                    pause = env.timeout(_drag)
                    pause.add_callback(
                        lambda _p, _m=_marker: _m.succeed(None))

                flow.add_callback(_after)
                done.append(marker)
            else:
                done.append(flow)
        yield all_of(env, done)

    def broadcast_tree(self, root: Node, targets: Sequence[Node],
                       nbytes: float, *,
                       stream_bandwidth: Optional[float] = None,
                       overhead: float = 0.0, fanout: int = 2,
                       ) -> Generator:
        """Simulated process: binomial-tree broadcast from ``root``.

        Models Spark's torrent-style broadcast well enough for cost purposes:
        the root is not the sole sender, so broadcast cost grows with
        ``log(n)`` rather than ``n``. Completes when every target has a copy.
        """
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        have = [root]
        remaining = [n for n in targets if n.node_id != root.node_id]
        # Deterministic order: nearest (same-host) receivers first.
        remaining.sort(key=lambda n: (n.hostname != root.hostname, n.node_id))
        while remaining:
            wave = []
            senders = list(have)
            for sender in senders:
                for _ in range(fanout):
                    if not remaining:
                        break
                    receiver = remaining.pop(0)
                    wave.append((sender, receiver, nbytes))
                    have.append(receiver)
            # All of a wave's streams start at the same instant: run the
            # whole wave as one batched process instead of one per edge.
            yield from self.transfer_many(wave,
                                          stream_bandwidth=stream_bandwidth,
                                          overhead=overhead)
