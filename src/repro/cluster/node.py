"""Physical nodes and their NICs.

A :class:`Node` bundles the contended resources of a physical machine:

* ``cores`` — a slot :class:`~repro.sim.Resource` for CPU scheduling,
* ``nic_out`` / ``nic_in`` — :class:`~repro.cluster.flows.Link` capacity
  constraints for egress / ingress network bandwidth,
* ``loopback`` — a link for same-node transfers (memory bus).

Nodes never move data themselves; :class:`~repro.cluster.network.Network`
runs transfers as flows across their links.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import Environment, Resource
from .flows import Link

if TYPE_CHECKING:  # pragma: no cover
    from .config import ClusterConfig

__all__ = ["Node"]


class Node:
    """One physical machine of the simulated cluster."""

    def __init__(self, env: Environment, node_id: int, hostname: str,
                 cores: int, nic_bandwidth: float,
                 loopback_bandwidth: float, memory: float):
        if cores < 1:
            raise ValueError(f"node needs at least one core, got {cores}")
        self.env = env
        self.node_id = node_id
        self.hostname = hostname
        self.memory = memory
        self.cores = Resource(env, capacity=cores, name=f"{hostname}.cores")
        self.nic_out = Link(nic_bandwidth, name=f"{hostname}.nic_out")
        self.nic_in = Link(nic_bandwidth, name=f"{hostname}.nic_in")
        self.loopback = Link(loopback_bandwidth, name=f"{hostname}.loopback")

    @classmethod
    def from_config(cls, env: Environment, node_id: int,
                    config: "ClusterConfig", hostname: str = "") -> "Node":
        """Build a node with the platform constants of ``config``."""
        return cls(
            env,
            node_id=node_id,
            hostname=hostname or f"node-{node_id:03d}",
            cores=config.cores_per_node,
            nic_bandwidth=config.nic_bandwidth,
            loopback_bandwidth=config.loopback_bandwidth,
            memory=config.memory_per_node,
        )

    def __repr__(self) -> str:
        return f"<Node {self.node_id} {self.hostname!r}>"
