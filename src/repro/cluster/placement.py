"""Executor placement and the :class:`Cluster` facade.

:class:`Cluster` instantiates the nodes of a :class:`ClusterConfig`, a
separate driver host, and the :class:`Network`, and computes the executor
placement map.

Executors are placed **round-robin across nodes** (executor ``i`` lands on
node ``i mod num_nodes``), which mirrors how executors register with a real
Spark driver in arrival order — interleaved across hosts. This is exactly
why the paper's topology-awareness experiment (Figure 14) matters: ordering
the ring by executor id puts every hop on a physical link, while ordering by
hostname makes ``executors_per_node - 1`` of every ``executors_per_node``
hops a cheap intra-node hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..sim import Environment
from .config import ClusterConfig
from .network import Network
from .node import Node

__all__ = ["ExecutorSlot", "Cluster", "host_blocks"]


@dataclass(frozen=True)
class ExecutorSlot:
    """Where one executor lives: its id, its node, and its core count."""

    executor_id: int
    node: Node
    cores: int

    @property
    def hostname(self) -> str:
        return self.node.hostname

    def __repr__(self) -> str:
        return f"<ExecutorSlot {self.executor_id} on {self.hostname}>"


def host_blocks(slots: Sequence[ExecutorSlot]
                ) -> List[Tuple[str, List[int]]]:
    """Group a ranked slot list into contiguous same-host rank runs.

    Returns ``[(hostname, [rank, ...]), ...]`` in rank order — the
    host-topology view the hierarchical collective and the cost model
    consume (rank 0 of each block is that host's *leader*). Hostname-
    sorted rankings always satisfy contiguity; an id-sorted ranking that
    interleaves hosts raises ``ValueError``, because a host-level
    reduction over non-contiguous ranks cannot preserve the canonical
    rank-order reduction chain.
    """
    blocks: List[Tuple[str, List[int]]] = []
    seen = set()
    for rank, slot in enumerate(slots):
        host = slot.hostname
        if blocks and blocks[-1][0] == host:
            blocks[-1][1].append(rank)
            continue
        if host in seen:
            raise ValueError(
                f"host {host!r} appears in non-contiguous rank runs; "
                f"host-level grouping requires a hostname-sorted ranking")
        seen.add(host)
        blocks.append((host, [rank]))
    return blocks


class Cluster:
    """A fully instantiated simulated cluster.

    Parameters
    ----------
    env:
        Simulation environment all activity runs in.
    config:
        Platform description (see :class:`ClusterConfig`).
    driver_colocated:
        If True the driver shares node 0's NIC; by default it gets its own
        host with identical network characteristics.
    """

    def __init__(self, env: Environment, config: ClusterConfig,
                 driver_colocated: bool = False):
        config.validate()
        self.env = env
        self.config = config
        self.network = Network(env, config)
        self.nodes: List[Node] = [
            Node.from_config(env, node_id=i, config=config)
            for i in range(config.num_nodes)
        ]
        if driver_colocated:
            self.driver_node = self.nodes[0]
        else:
            self.driver_node = Node(
                env, node_id=-1, hostname="driver-host",
                cores=config.cores_per_node,
                nic_bandwidth=config.nic_bandwidth,
                loopback_bandwidth=config.loopback_bandwidth,
                memory=config.memory_per_node,
            )
        self.executors: List[ExecutorSlot] = self._place_executors()

    def _place_executors(self) -> List[ExecutorSlot]:
        slots = []
        for i in range(self.config.num_executors):
            node = self.nodes[i % self.config.num_nodes]
            slots.append(ExecutorSlot(executor_id=i, node=node,
                                      cores=self.config.executor_cores))
        return slots

    # ------------------------------------------------------------------ views
    @property
    def num_executors(self) -> int:
        return len(self.executors)

    @property
    def total_cores(self) -> int:
        return sum(slot.cores for slot in self.executors)

    def executors_on(self, node: Node) -> Sequence[ExecutorSlot]:
        """All executors placed on ``node``."""
        return [s for s in self.executors if s.node.node_id == node.node_id]

    def sorted_by_hostname(self) -> List[ExecutorSlot]:
        """Executor ranking used by the topology-aware communicator."""
        return sorted(self.executors,
                      key=lambda s: (s.hostname, s.executor_id))

    def sorted_by_id(self) -> List[ExecutorSlot]:
        """Executor ranking by registration order (topology-oblivious)."""
        return sorted(self.executors, key=lambda s: s.executor_id)

    def __repr__(self) -> str:
        return (f"<Cluster {self.config.name!r} nodes={len(self.nodes)} "
                f"executors={self.num_executors}>")
