"""The cooperative driver reactor: many job threads, one event loop.

The classic blocking API runs driver code and the simulation kernel on
one thread, alternating between them (``sc.env.run(until=proc)``). The
job service needs *many* drivers — one per in-flight job — sharing one
kernel, without making the kernel thread-safe or turning every driver
call site into a coroutine. The :class:`Cooperator` squares that circle
with strict baton-passing:

* Each job runs its (unchanged, synchronous) driver code on its own
  worker thread.
* Exactly one thread is ever runnable: either the **owner** thread
  (which created the Cooperator and pumps the event loop) or one worker.
* When a worker calls ``env.run(until=event)``, the environment
  delegates here (see :attr:`Environment._cooperator`): the worker
  registers a wake-up callback on the event, hands the baton back to the
  owner, and parks on a :class:`threading.Event`. The owner steps the
  simulation; when the awaited event is processed, its callback puts the
  worker on the ready queue and the owner hands it the baton at the next
  pump iteration (FIFO over wake-ups — deterministic).

Because only one thread runs at a time, no engine state needs locking,
and a fixed submission schedule replays to bit-identical virtual
timelines: the ready queue and the event queue are both FIFO, and worker
wake-up order is a pure function of simulation order.

Cancellation composes with this for free: to cancel a job, interrupt the
simulation :class:`~repro.sim.Process` its worker is parked on — the
process fails, the worker wakes with the failure re-raised in its
``env.run`` call, and the job's own exception handling unwinds it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..sim import EmptySchedule, Environment, Event

__all__ = ["Cooperator", "ServiceDeadlock"]


class ServiceDeadlock(RuntimeError):
    """The simulation drained while workers were still parked.

    Every parked worker awaits a simulation event; an empty event queue
    means none of those events can ever fire — some job is waiting on a
    resource or signal nothing will produce.
    """


class _Worker:
    """Bookkeeping for one job thread."""

    __slots__ = ("name", "baton", "thread", "parked_on", "done")

    def __init__(self, name: str):
        self.name = name
        #: the worker runs only while this is set (strict baton-passing)
        self.baton = threading.Event()
        self.thread: Optional[threading.Thread] = None
        #: simulation event this worker is currently parked on
        self.parked_on: Optional[Event] = None
        self.done = False

    def __repr__(self) -> str:
        state = ("done" if self.done
                 else f"parked on {self.parked_on!r}" if self.parked_on
                 else "ready")
        return f"<worker {self.name} {state}>"


class Cooperator:
    """Baton-passing scheduler for driver worker threads over one env.

    Construct on the thread that will pump the loop (the *owner*); it
    attaches itself to ``env`` so every ``env.run(until=...)`` issued
    from a spawned worker parks that worker instead of re-entering the
    kernel.
    """

    def __init__(self, env: Environment):
        if env._cooperator is not None:
            raise RuntimeError("environment already has a cooperator")
        self.env = env
        env._cooperator = self
        self._owner = threading.current_thread()
        self._workers: Dict[threading.Thread, _Worker] = {}
        #: workers whose awaited event has been processed (or who were
        #: just spawned), in wake-up order
        self._ready: Deque[_Worker] = deque()
        #: set by a worker when it parks or exits; the owner waits on it
        #: after handing a worker the baton
        self._owner_signal = threading.Event()

    # ---------------------------------------------------- Environment hook
    def owns_current_thread(self) -> bool:
        """True when the calling thread is a spawned worker."""
        return threading.current_thread() in self._workers

    def await_event(self, until) -> object:
        """Park the calling worker until ``until`` is processed.

        This is the body of ``env.run(until=...)`` for worker threads;
        it mirrors the kernel's contract — return the event's value, or
        re-raise its failure exception.
        """
        if not isinstance(until, Event):
            raise RuntimeError(
                "service worker threads may only run until a specific "
                f"event, not {until!r}: draining the queue or running to "
                "a time horizon belongs to the owner thread")
        if until.processed:
            if until.exception is not None:
                raise until.exception
            return until.value
        worker = self._workers[threading.current_thread()]
        worker.parked_on = until
        until.add_callback(lambda _event: self._ready.append(worker))
        worker.baton.clear()
        self._owner_signal.set()
        worker.baton.wait()
        worker.parked_on = None
        if until.exception is not None:
            raise until.exception
        return until.value

    # -------------------------------------------------------------- spawn
    def spawn(self, fn: Callable[[], None], name: str) -> _Worker:
        """Start a worker thread that will run ``fn`` once woken.

        The worker is born parked on the ready queue; it does not run
        until the owner's pump hands it the baton, so spawning from
        anywhere (the owner thread, another worker, a simulation
        process body) never violates the one-runnable-thread invariant.
        """
        worker = _Worker(name)
        thread = threading.Thread(target=self._worker_main,
                                  args=(worker, fn),
                                  name=f"sparker-job:{name}", daemon=True)
        worker.thread = thread
        self._workers[thread] = worker
        self._ready.append(worker)
        thread.start()
        return worker

    def _worker_main(self, worker: _Worker, fn: Callable[[], None]) -> None:
        worker.baton.wait()  # born parked: run only once the pump says so
        try:
            fn()
        finally:
            # The worker holds the baton here, so mutating shared
            # bookkeeping is safe; the owner resumes on the signal.
            self._workers.pop(worker.thread, None)
            worker.done = True
            self._owner_signal.set()

    # --------------------------------------------------------------- pump
    def pump(self, until_done: Optional[Callable[[], bool]] = None) -> None:
        """Run workers and the event loop until ``until_done()`` is true.

        With no predicate, runs until every worker has exited and the
        event queue has drained. Must be called on the owner thread
        (worker threads re-enter the kernel through :meth:`await_event`
        instead).
        """
        if threading.current_thread() in self._workers:
            raise RuntimeError("pump() must run on the owner thread")
        env = self.env
        while True:
            if until_done is not None and until_done():
                return
            if self._ready:
                worker = self._ready.popleft()
                self._owner_signal.clear()
                worker.baton.set()
                self._owner_signal.wait()
                continue
            try:
                env.step()
            except EmptySchedule:
                parked = [w for w in self._workers.values()
                          if w.parked_on is not None]
                if parked:
                    raise ServiceDeadlock(
                        f"simulation drained with {len(parked)} worker(s) "
                        f"still parked: {parked}") from None
                if until_done is not None and not until_done():
                    raise ServiceDeadlock(
                        "simulation drained before the awaited condition "
                        "became true") from None
                return

    def __repr__(self) -> str:
        return (f"<Cooperator workers={len(self._workers)} "
                f"ready={len(self._ready)}>")
