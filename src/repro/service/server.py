"""The multi-tenant job server: one context, many concurrent drivers.

A :class:`JobServer` owns a single long-lived
:class:`~repro.rdd.context.SparkerContext` and accepts asynchronous job
submissions from many simulated tenants. Each admitted job runs its
(unchanged, synchronous) driver code on a worker thread scheduled by the
:class:`~repro.service.reactor.Cooperator`; task slots are arbitrated
across tenant pools by the :class:`~repro.service.fair.FairTaskArbiter`;
per-pool quotas bound how many jobs a tenant may have running or queued.

Determinism: a fixed submission schedule (e.g. a seeded
:mod:`~repro.service.traffic` generator) replays to a bit-identical
virtual timeline, and every job's model output is byte-identical to the
same job run alone on a fresh context — IMM stages run in ordered
deferred-merge mode (see DESIGN.md §16), which makes cross-job task
interleaving unobservable in the fold result.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..cluster import ClusterConfig
from ..obs import PoolSample, ServiceJobFinished, ServiceJobSubmitted
from ..rdd.context import JobCancelled, JobScope, SparkerContext
from ..sim import Process
from .fair import DEFAULT_POOL, FairTaskArbiter, PoolConfig
from .reactor import Cooperator

__all__ = ["JobServer", "JobRecord", "JobStatus", "QuotaExceeded"]


class QuotaExceeded(RuntimeError):
    """The pool's running and queued job quotas are both full."""


class JobStatus:
    """Lifecycle states of a service job (string constants)."""

    QUEUED = "queued"        #: admitted, waiting for a pool job slot
    RUNNING = "running"      #: driver code executing on a worker thread
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset((SUCCEEDED, FAILED, CANCELLED))


class JobRecord:
    """Server-side state of one submitted job."""

    __slots__ = ("service_job_id", "tenant", "pool", "workload", "body",
                 "status", "result", "exception", "scope", "worker",
                 "submitted", "started", "finished", "cancel_requested",
                 "done_event")

    def __init__(self, service_job_id: int, tenant: str, pool: str,
                 workload: str, body: Callable[[], Any],
                 scope: JobScope, submitted: float, done_event):
        self.service_job_id = service_job_id
        self.tenant = tenant
        self.pool = pool
        self.workload = workload
        self.body = body
        self.status = JobStatus.QUEUED
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.scope = scope
        self.worker = None
        self.submitted = submitted
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.cancel_requested = False
        #: simulation event succeeded at completion, so other *jobs* can
        #: wait on this one without blocking the reactor
        self.done_event = done_event

    @property
    def done(self) -> bool:
        return self.status in JobStatus.TERMINAL

    @property
    def latency(self) -> Optional[float]:
        """Submission-to-completion virtual seconds (None while live)."""
        if self.finished is None:
            return None
        return self.finished - self.submitted

    def __repr__(self) -> str:
        return (f"<JobRecord #{self.service_job_id} {self.workload} "
                f"tenant={self.tenant} pool={self.pool} {self.status}>")


class JobServer:
    """Long-lived job service over one shared :class:`SparkerContext`.

    Parameters
    ----------
    config:
        Cluster platform for the shared context (ignored when ``sc`` is
        given).
    pools:
        ``{name: PoolConfig}`` FAIR pools; unknown pool names submitted
        later are auto-registered at weight 1.
    default_pool:
        Pool used when a submission names none.
    sc:
        Adopt an existing context instead of creating one. It must not
        have a cooperator or arbiter installed yet.
    """

    def __init__(self, config: Optional[ClusterConfig] = None,
                 pools: Optional[Dict[str, PoolConfig]] = None,
                 default_pool: str = DEFAULT_POOL,
                 sc: Optional[SparkerContext] = None, **context_kwargs: Any):
        self.sc = sc if sc is not None else SparkerContext(config,
                                                           **context_kwargs)
        self.cooperator = Cooperator(self.sc.env)
        if self.sc.task_arbiter is not None:
            raise RuntimeError("context already has a task arbiter")
        self.arbiter = FairTaskArbiter(self.sc, pools,
                                       default_pool=default_pool)
        # The arbiter is always installed in service mode — beyond
        # fairness, it guarantees a cancelled task never strands a slot
        # in the Resource's waiter queue (see repro.service.fair).
        self.sc.task_arbiter = self.arbiter
        self.default_pool = default_pool
        self.jobs: List[JobRecord] = []
        self._ids = itertools.count()
        #: per-pool count of spawned-and-unfinished jobs
        self._pool_running: Dict[str, int] = {}
        #: per-pool admission queues (jobs beyond max_running)
        self._pool_pending: Dict[str, Deque[JobRecord]] = {}
        #: cross-job cache: key -> ("loading", Event) | ("ready", value)
        self._shared: Dict[Any, Tuple[str, Any]] = {}
        self._closed = False

    # -------------------------------------------------------------- submit
    def submit(self, body: Callable[[], Any], *,
               pool: Optional[str] = None, tenant: str = "anonymous",
               workload: str = "<job>", ordered: bool = True) -> JobRecord:
        """Admit ``body`` as an asynchronous job; returns its record.

        ``body`` runs on its own worker thread with a
        :class:`~repro.rdd.context.JobScope` installed (pool billing,
        per-job stopwatch, ordered IMM merges). Raises
        :class:`QuotaExceeded` when the pool's ``max_running`` *and*
        ``max_queued`` are both saturated. Callable from the owner
        thread, from another job, or from a simulation process (traffic
        generators) — the job starts at the reactor's next turn.
        """
        if self._closed:
            raise RuntimeError("job server is closed")
        pool = pool or self.default_pool
        pool_config = self.arbiter.pools.setdefault(pool, PoolConfig())
        scope = JobScope(self.sc, pool=pool, ordered=ordered)
        record = JobRecord(next(self._ids), tenant, pool, workload, body,
                           scope, submitted=self.sc.now,
                           done_event=self.sc.env.event(name="job-done"))
        running = self._pool_running.get(pool, 0)
        queue_job = (pool_config.max_running is not None
                     and running >= pool_config.max_running)
        if queue_job:
            pending = self._pool_pending.setdefault(pool, deque())
            if (pool_config.max_queued is not None
                    and len(pending) >= pool_config.max_queued):
                raise QuotaExceeded(
                    f"pool {pool!r} is full: {running} running "
                    f"(max {pool_config.max_running}), {len(pending)} "
                    f"queued (max {pool_config.max_queued})")
            pending.append(record)
        self.jobs.append(record)
        bus = self.sc.event_bus
        if bus.active:
            bus.emit(ServiceJobSubmitted(
                time=self.sc.now, service_job_id=record.service_job_id,
                tenant=tenant, pool=pool, workload=workload,
                queued=queue_job))
        if not queue_job:
            self._start(record)
        return record

    def _start(self, record: JobRecord) -> None:
        record.status = JobStatus.RUNNING
        self._pool_running[record.pool] = (
            self._pool_running.get(record.pool, 0) + 1)
        record.worker = self.cooperator.spawn(
            lambda: self._job_main(record),
            name=f"{record.workload}#{record.service_job_id}")

    def _job_main(self, record: JobRecord) -> None:
        sc = self.sc
        scope = record.scope
        sc.enter_job_scope(scope)
        record.started = sc.now
        try:
            record.result = record.body()
        except BaseException as exc:  # noqa: BLE001 - job isolation
            record.exception = exc
            if record.cancel_requested or isinstance(exc, JobCancelled):
                record.status = JobStatus.CANCELLED
            else:
                record.status = JobStatus.FAILED
        else:
            record.status = JobStatus.SUCCEEDED
        finally:
            sc.exit_job_scope()
            record.finished = sc.now
            if record.status != JobStatus.SUCCEEDED:
                # A job that unwound mid-stage may have left partial IMM
                # aggregators on executors; sweep every engine job this
                # scope submitted.
                for job_id in scope.job_ids:
                    for executor in sc.executors:
                        executor.object_manager.clear_job(job_id)
            bus = sc.event_bus
            if bus.active:
                bus.emit(ServiceJobFinished(
                    time=sc.now, service_job_id=record.service_job_id,
                    tenant=record.tenant, pool=record.pool,
                    workload=record.workload, status=record.status,
                    submitted=record.submitted,
                    latency=sc.now - record.submitted))
            record.done_event.succeed(record.status)
            self._pool_running[record.pool] -= 1
            self._dequeue_pending(record.pool)

    def _dequeue_pending(self, pool: str) -> None:
        pending = self._pool_pending.get(pool)
        config = self.arbiter.pools.get(pool) or PoolConfig()
        while pending and (config.max_running is None
                           or self._pool_running.get(pool, 0)
                           < config.max_running):
            self._start(pending.popleft())

    # ---------------------------------------------------------------- wait
    def wait(self, record: JobRecord) -> JobRecord:
        """Block until ``record`` reaches a terminal status.

        On the owner thread this pumps the reactor; from another job's
        worker thread it parks that job on the record's completion
        event, so jobs can depend on jobs.
        """
        if record.done:
            return record
        if self.cooperator.owns_current_thread():
            self.sc.env.run(until=record.done_event)
        else:
            self.cooperator.pump(lambda: record.done)
        return record

    def drain(self) -> None:
        """Run until every submitted job has finished."""
        self.cooperator.pump(
            lambda: all(job.done for job in self.jobs))

    # -------------------------------------------------------------- cancel
    def cancel(self, record: JobRecord, reason: str = "cancelled") -> bool:
        """Request cancellation of ``record``; True if it will not finish.

        A queued job is withdrawn immediately. A running job is
        interrupted mid-stage when its worker is parked on a live
        scheduler process; otherwise its next engine call (job
        submission, broadcast) raises
        :class:`~repro.rdd.context.JobCancelled`. Already-finished jobs
        return False.
        """
        if record.done:
            return False
        record.cancel_requested = True
        record.scope.cancelled = reason
        if record.status == JobStatus.QUEUED:
            pending = self._pool_pending.get(record.pool)
            if pending is not None and record in pending:
                pending.remove(record)
            record.status = JobStatus.CANCELLED
            record.finished = self.sc.now
            bus = self.sc.event_bus
            if bus.active:
                bus.emit(ServiceJobFinished(
                    time=self.sc.now,
                    service_job_id=record.service_job_id,
                    tenant=record.tenant, pool=record.pool,
                    workload=record.workload, status=record.status,
                    submitted=record.submitted,
                    latency=self.sc.now - record.submitted))
            record.done_event.succeed(record.status)
            return True
        worker = record.worker
        parked = worker.parked_on if worker is not None else None
        if isinstance(parked, Process) and parked.is_alive:
            parked.interrupt(reason)
        return True

    # ------------------------------------------------------- shared state
    def shared(self, key: Any, loader: Callable[[], Any]) -> Any:
        """Cross-job cache: compute ``loader()`` once per ``key``.

        The first job to ask runs the loader (which may block on the
        simulation — e.g. caching and counting a dataset RDD); jobs
        asking while it is in flight park until the value is ready.
        Used for dataset RDDs and shared broadcasts keyed by dataset
        identity.
        """
        entry = self._shared.get(key)
        if entry is None:
            event = self.sc.env.event(name=f"shared:{key}")
            self._shared[key] = ("loading", event)
            try:
                value = loader()
            except BaseException as exc:
                # Failed loads don't poison the cache: the next asker
                # retries, and in-flight waiters see this failure.
                del self._shared[key]
                event.fail(exc)
                raise
            self._shared[key] = ("ready", value)
            event.succeed(value)
            return value
        kind, payload = entry
        if kind == "ready":
            return payload
        return self.sc.env.run(until=payload)

    # ------------------------------------------------------------ metrics
    def sample_pools(self) -> Dict[str, Dict[str, float]]:
        """Snapshot per-pool arbiter accounting (and emit PoolSamples)."""
        snapshot = self.arbiter.snapshot()
        bus = self.sc.event_bus
        if bus.active:
            queued = self.arbiter.queued()
            for pool, stats in snapshot.items():
                bus.emit(PoolSample(
                    time=self.sc.now, pool=pool, weight=stats["weight"],
                    running=int(stats["running"]),
                    task_seconds=stats["task_seconds"],
                    queued_tickets=queued))
        return snapshot

    # ------------------------------------------------------------ teardown
    def close(self) -> None:
        """Stop the server and tear the shared context down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.sc.stop()

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        live = sum(1 for job in self.jobs if not job.done)
        return (f"<JobServer jobs={len(self.jobs)} live={live} "
                f"pools={sorted(self.arbiter.pools)}>")
