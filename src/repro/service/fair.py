"""FAIR task scheduling: weighted slot arbitration across tenant pools.

Spark's FAIR scheduler interleaves *tasks* of concurrent jobs instead of
running jobs FIFO; pools carry weights so tenants get proportional
cluster shares. Here the unit of arbitration is an executor task slot:
when :attr:`SparkerContext.task_arbiter` is installed, executors route
every slot acquisition through :meth:`FairTaskArbiter.admit` instead of
acquiring from their ``task_slots`` Resource directly.

Invariants (load-bearing — see DESIGN.md §16):

* **The Resource's waiter queue stays empty.** The arbiter *reserves* a
  slot before letting a task call ``task_slots.acquire()``, so the
  acquire always takes the immediate fast path. This matters because a
  process interrupted while queued inside ``Resource.acquire`` leaves a
  dead waiter event behind, and a later ``release()`` would hand the
  slot to that corpse — a permanent slot leak. With the arbiter, waiting
  happens on arbiter tickets, which clean up after interrupts.
* **Grant order is deterministic.** Among queued tickets for an
  executor, the pool with the smallest weighted cluster-wide running
  count wins; ties break on ticket sequence (submission order).
* **Work conservation.** A free, unreserved slot with no queued tickets
  is granted immediately; fairness only arbitrates contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Generator, Optional

from collections import deque

if TYPE_CHECKING:  # pragma: no cover
    from ..rdd.context import SparkerContext
    from ..rdd.executor import Executor
    from ..rdd.tasks import Task

__all__ = ["PoolConfig", "FairTaskArbiter", "DEFAULT_POOL"]

#: pool used for tasks submitted without an explicit pool
DEFAULT_POOL = "default"


@dataclass(frozen=True)
class PoolConfig:
    """Scheduling parameters of one tenant pool.

    ``weight`` scales the pool's slot share under contention (a weight-2
    pool is entitled to twice the running tasks of a weight-1 pool).
    ``max_running`` / ``max_queued`` are *job*-level admission quotas
    enforced by the :class:`~repro.service.server.JobServer`, not here.
    """

    weight: float = 1.0
    max_running: Optional[int] = None
    max_queued: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"pool weight must be positive: {self.weight}")


class _Ticket:
    __slots__ = ("pool", "event", "seq", "granted")

    def __init__(self, pool: str, event, seq: int):
        self.pool = pool
        self.event = event
        self.seq = seq
        self.granted = False


class FairTaskArbiter:
    """Weighted-fair arbitration of executor task slots across pools."""

    def __init__(self, sc: "SparkerContext",
                 pools: Optional[Dict[str, PoolConfig]] = None,
                 default_pool: str = DEFAULT_POOL):
        self.sc = sc
        self.env = sc.env
        self.default_pool = default_pool
        self.pools: Dict[str, PoolConfig] = dict(pools or {})
        self.pools.setdefault(default_pool, PoolConfig())
        #: queued tickets per executor, FIFO by submission
        self._queues: Dict[int, Deque[_Ticket]] = {}
        #: granted-but-not-yet-acquired slots per executor; keeps a
        #: fast-path admit from stealing a slot promised to a ticket
        self._reserved: Dict[int, int] = {}
        #: cluster-wide running task count per pool (the fairness signal)
        self._running: Dict[str, int] = {}
        #: accumulated slot-seconds per pool (the fairness *metric*)
        self._task_seconds: Dict[str, float] = {}
        self._next_seq = 0

    # ----------------------------------------------------------- plumbing
    def pool_of(self, task: "Task") -> str:
        return task.pool if task.pool is not None else self.default_pool

    def _weight(self, pool: str) -> float:
        config = self.pools.get(pool)
        if config is None:
            # Unknown pools participate at weight 1 rather than failing:
            # the server registers pools eagerly, but raw-context users
            # may stamp novel pool names.
            config = self.pools[pool] = PoolConfig()
        return config.weight

    def _free_slots(self, executor: "Executor") -> int:
        slots = executor.task_slots
        return (slots.capacity - slots.in_use
                - self._reserved.get(executor.executor_id, 0))

    # -------------------------------------------------------------- admit
    def admit(self, executor: "Executor", task: "Task") -> Generator:
        """Process body: wait for and take one slot on ``executor``.

        Yields exactly like ``task_slots.acquire()`` from the caller's
        point of view; on return the slot is held. On interrupt while
        queued, the ticket (and any reservation already granted to it)
        is returned to the arbiter before the interrupt propagates.
        """
        eid = executor.executor_id
        pool = self.pool_of(task)
        queue = self._queues.get(eid)
        if self._free_slots(executor) > 0 and not queue:
            self._reserved[eid] = self._reserved.get(eid, 0) + 1
        else:
            ticket = _Ticket(pool, self.env.event(name=f"fair:{pool}"),
                             self._next_seq)
            self._next_seq += 1
            if queue is None:
                queue = self._queues[eid] = deque()
            queue.append(ticket)
            try:
                yield ticket.event
            except BaseException:
                if ticket.granted:
                    # The reservation this ticket held passes to the
                    # next most deserving ticket (or lapses).
                    self._reserved[eid] -= 1
                    self._dispatch(executor)
                else:
                    queue.remove(ticket)
                raise
        # A reservation is held either way; the acquire is therefore
        # immediate and the Resource's waiter queue stays empty.
        grant = executor.task_slots.acquire()
        assert grant.triggered, "arbiter reservation was not honoured"
        self._reserved[eid] -= 1
        self._running[pool] = self._running.get(pool, 0) + 1

    def released(self, executor: "Executor", task: "Task",
                 seconds: float) -> None:
        """Hook run by the executor right after ``task_slots.release()``."""
        pool = self.pool_of(task)
        self._running[pool] = self._running.get(pool, 0) - 1
        self._task_seconds[pool] = (self._task_seconds.get(pool, 0.0)
                                    + seconds)
        self._dispatch(executor)

    def _dispatch(self, executor: "Executor") -> None:
        """Grant the most underserved queued ticket a freed slot."""
        queue = self._queues.get(executor.executor_id)
        if not queue or self._free_slots(executor) <= 0:
            return
        best = min(queue, key=lambda t: (
            self._running.get(t.pool, 0) / self._weight(t.pool), t.seq))
        queue.remove(best)
        best.granted = True
        eid = executor.executor_id
        self._reserved[eid] = self._reserved.get(eid, 0) + 1
        best.event.succeed()

    # ------------------------------------------------------------ metrics
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-pool accounting: running tasks, slot-seconds, weight."""
        pools = set(self.pools) | set(self._running) | set(self._task_seconds)
        return {
            pool: {
                "weight": self._weight(pool),
                "running": self._running.get(pool, 0),
                "task_seconds": self._task_seconds.get(pool, 0.0),
            }
            for pool in sorted(pools)
        }

    def queued(self) -> int:
        """Total tickets currently waiting (queue-depth metric)."""
        return sum(len(q) for q in self._queues.values())

    def __repr__(self) -> str:
        return (f"<FairTaskArbiter pools={sorted(self.pools)} "
                f"queued={self.queued()}>")
