"""Multi-tenant Sparker job service (``repro.service``).

Runs many jobs concurrently on **one** simulated cluster, the way a
shared Spark deployment serves many applications from one driver:

* :mod:`repro.service.session` — :class:`SparkerSession`, the public
  entry point (``run`` for the classic one-shot path, ``submit`` for the
  async service path returning a :class:`JobHandle`),
* :mod:`repro.service.server` — the :class:`JobServer`: admission
  control, per-pool job quotas, the cross-job shared-dataset cache,
  cancellation, lifecycle events,
* :mod:`repro.service.reactor` — the :class:`Cooperator`, a strict
  baton-passing scheduler that multiplexes each job's (unchanged,
  synchronous) driver code over the single virtual clock with exactly
  one runnable thread at a time — engine state needs no locks and every
  run replays bit-identically,
* :mod:`repro.service.fair` — the :class:`FairTaskArbiter`: weighted
  FAIR sharing of executor task slots across tenant pools,
* :mod:`repro.service.traffic` — seeded open-loop (Poisson + bursty)
  multi-tenant traffic generation.

Quickstart::

    from repro.cluster import ClusterConfig
    from repro.service import PoolConfig, SparkerSession

    with SparkerSession(ClusterConfig.bic(),
                        pools={"prod": PoolConfig(weight=3.0),
                               "adhoc": PoolConfig(weight=1.0)}) as session:
        prod = session.submit("LR-C", pool="prod", tenant="alice")
        adhoc = session.submit("SVM-A", pool="adhoc", tenant="bob")
        print(prod.result().end_to_end, adhoc.result().end_to_end)

Every job's trained weights are byte-identical to the same job run alone
on a fresh context (ordered deferred-merge IMM folding — DESIGN.md §16),
so multi-tenancy changes *when* things happen, never *what* is computed.
"""

from ..rdd.context import JobCancelled
from .fair import DEFAULT_POOL, FairTaskArbiter, PoolConfig
from .reactor import Cooperator, ServiceDeadlock
from .server import JobRecord, JobServer, JobStatus, QuotaExceeded
from .session import JobHandle, SparkerSession
from .traffic import (
    Arrival,
    TenantProfile,
    TrafficResult,
    arrival_schedule,
    run_open_loop,
    submit_arrival,
)

__all__ = [
    "SparkerSession",
    "JobHandle",
    "JobServer",
    "JobRecord",
    "JobStatus",
    "JobCancelled",
    "QuotaExceeded",
    "PoolConfig",
    "DEFAULT_POOL",
    "FairTaskArbiter",
    "Cooperator",
    "ServiceDeadlock",
    "TenantProfile",
    "Arrival",
    "TrafficResult",
    "arrival_schedule",
    "run_open_loop",
    "submit_arrival",
]
