"""``SparkerSession``: the user-facing entry point, sync and async.

The session wraps both ways of running a workload:

* :meth:`SparkerSession.run` — the classic one-shot path: a fresh
  :class:`~repro.rdd.context.SparkerContext` per call, training executed
  synchronously, bit-identical to the historical
  :func:`repro.bench.workloads.run_workload` (which is now a thin
  wrapper over this method).
* :meth:`SparkerSession.submit` — the multi-tenant service path: the
  job is admitted to the session's shared :class:`JobServer` and runs
  concurrently with other tenants' jobs on one long-lived context;
  the returned :class:`JobHandle` exposes ``result()`` / ``status()`` /
  ``cancel()``.

Service submissions are validated up front: ``compression="topk"``
shares per-executor error-feedback residuals across tenants and is
rejected; recovery policies assume they own the cluster's failure
handling and are rejected; the ``pipelined_ring`` collective streams
aggregators in merge-arrival order (incompatible with the deterministic
ordered-merge mode) and is downgraded to ``ring``, which PR 5 made
byte-identical in result.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Optional, Tuple

from ..bench.harness import BreakdownRecorder
from ..cluster import ClusterConfig
from ..core.spec import AggregationSpec, spec_with_legacy
from ..data.registry import SURROGATE_LDA_TOPICS
from ..ml.classification import LogisticRegressionWithSGD, SVMWithSGD
from ..ml.lda import LDA
from ..rdd.context import JobCancelled, SparkerContext
from .fair import DEFAULT_POOL, PoolConfig
from .server import JobRecord, JobServer, JobStatus

__all__ = ["SparkerSession", "JobHandle", "JobStatus"]

#: emitted-once guard for the pipelined_ring service downgrade
_warned_downgrades: set = set()


def _resolve_workload(name: str):
    from ..bench.workloads import WORKLOADS
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(WORKLOADS)
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def _check_lda_spec(workload, spec: AggregationSpec) -> None:
    if workload.model == "lda" and (spec.sparse_aggregation or spec.batched):
        raise ValueError(
            "sparse_aggregation/batched apply to the LR/SVM workloads only")


def _train(sc: SparkerContext, workload, rdd, ds, spec: AggregationSpec,
           aggregation: str, iterations: int) -> Tuple[Any, float]:
    """The training call shared by the sync and service paths.

    Body and argument order mirror the historical ``run_workload``
    exactly — the sync path's bit-identity to the seed rests on it.
    """
    if workload.model == "lda":
        model = LDA(
            k=SURROGATE_LDA_TOPICS, num_iterations=iterations,
            aggregation=aggregation, spec=spec,
            size_scale=ds.size_scale, sample_scale=ds.compute_scale,
        ).fit(rdd, ds.surrogate_features)
        return model, -model.log_likelihoods[-1]
    trainer = (LogisticRegressionWithSGD if workload.model == "lr"
               else SVMWithSGD)
    model = trainer.train(
        rdd, ds.surrogate_features,
        num_iterations=iterations,
        step_size=workload.step_size,
        reg_param=workload.reg_param,
        mini_batch_fraction=workload.mini_batch_fraction,
        aggregation=aggregation,
        spec=spec,
        size_scale=ds.size_scale,
        sample_scale=ds.compute_scale,
    )
    return model, model.losses[-1]


def _workload_result(name: str, config: ClusterConfig, aggregation: str,
                     iterations: int, sc: SparkerContext, began: float,
                     recorder: BreakdownRecorder, model: Any,
                     final_loss: float):
    from ..bench.workloads import WorkloadResult
    return WorkloadResult(
        workload=name,
        config_name=config.name,
        num_nodes=config.num_nodes,
        aggregation=aggregation,
        iterations=iterations,
        end_to_end=sc.now - began,
        breakdown=recorder.finish(),
        final_loss=final_loss,
        sim_events=sc.env.events_scheduled,
        tasks_run=sum(e.tasks_run for e in sc.executors),
        final_weights=getattr(model, "weights", None),
    )


def service_spec(spec: Optional[AggregationSpec]) -> AggregationSpec:
    """Validate/adapt an aggregation spec for multi-tenant submission."""
    if spec is None:
        spec = AggregationSpec()
    if spec.compression == "topk":
        raise ValueError(
            "service jobs cannot use compression='topk': error-feedback "
            "residuals live per executor and would couple tenants")
    if spec.recovery is not None:
        raise ValueError(
            "service jobs cannot carry a recovery policy: failure "
            "handling on a shared cluster belongs to the server")
    if spec.collective == "pipelined_ring":
        if "pipelined_ring" not in _warned_downgrades:
            _warned_downgrades.add("pipelined_ring")
            warnings.warn(
                "service jobs downgrade collective='pipelined_ring' to "
                "'ring': streaming aggregators in merge-arrival order is "
                "incompatible with the deterministic ordered-merge mode "
                "(results are identical; overlap is lost)",
                RuntimeWarning, stacklevel=3)
        spec = spec.replace(collective="ring")
    return spec


class JobHandle:
    """Client-side handle to one asynchronously submitted job."""

    def __init__(self, server: JobServer, record: JobRecord):
        self._server = server
        self._record = record

    @property
    def job_id(self) -> int:
        return self._record.service_job_id

    @property
    def workload(self) -> str:
        return self._record.workload

    @property
    def pool(self) -> str:
        return self._record.pool

    def status(self) -> str:
        """Current :class:`JobStatus` constant."""
        return self._record.status

    def done(self) -> bool:
        return self._record.done

    def result(self):
        """Block until the job finishes; return its
        :class:`~repro.bench.workloads.WorkloadResult`.

        Re-raises the job's exception if it failed or was cancelled.
        Callable from the submitting thread (pumps the service reactor)
        or from inside another job (parks that job).
        """
        record = self._server.wait(self._record)
        if record.exception is not None:
            raise record.exception
        if record.status == JobStatus.CANCELLED:
            # withdrawn while still queued: no body ever ran, so there is
            # no captured exception to re-raise
            raise JobCancelled(f"job #{record.service_job_id} cancelled "
                               f"before it started")
        return record.result

    def cancel(self, reason: str = "cancelled") -> bool:
        """Request cancellation; True unless the job already finished."""
        return self._server.cancel(self._record, reason)

    @property
    def latency(self) -> Optional[float]:
        return self._record.latency

    def __repr__(self) -> str:
        return (f"<JobHandle #{self.job_id} {self.workload} "
                f"{self.status()}>")


class SparkerSession:
    """One user-facing entry point for both execution modes.

    Parameters
    ----------
    config:
        Cluster platform (both for one-shot :meth:`run` contexts and the
        shared service context); defaults to the ``laptop`` preset.
    pools:
        FAIR pool configurations for the service path.
    default_pool:
        Pool for submissions that name none.

    The shared :class:`JobServer` (and with it the service context,
    reactor and arbiter) is created lazily on first :meth:`submit`, so a
    session used only for :meth:`run` carries no service machinery at
    all.
    """

    def __init__(self, config: Optional[ClusterConfig] = None,
                 pools: Optional[Dict[str, PoolConfig]] = None,
                 default_pool: str = DEFAULT_POOL, **context_kwargs: Any):
        self.config = config or ClusterConfig.laptop()
        self._pools = pools
        self._default_pool = default_pool
        self._context_kwargs = context_kwargs
        self._server: Optional[JobServer] = None

    # ------------------------------------------------------------- service
    @property
    def server(self) -> JobServer:
        """The lazily created shared job server."""
        if self._server is None:
            self._server = JobServer(self.config, pools=self._pools,
                                     default_pool=self._default_pool,
                                     **self._context_kwargs)
        return self._server

    # ------------------------------------------------------------ one-shot
    def context(self, **context_kwargs: Any) -> SparkerContext:
        """A fresh one-shot :class:`SparkerContext` on this session's
        platform, for custom driver programs that need the raw RDD API.

        Each call returns a new independent context (own virtual clock,
        own cluster); callers own its lifecycle (``with`` or ``stop()``).
        Session-level ``context_kwargs`` are defaults, call-site ones
        win.
        """
        kwargs = dict(self._context_kwargs)
        kwargs.update(context_kwargs)
        return SparkerContext(self.config, **kwargs)

    def run(self, workload: str, aggregation: str = "tree",
            iterations: int = 3, spec: Optional[AggregationSpec] = None,
            partitions: Optional[int] = None, listener=None, *,
            parallelism: Optional[int] = None,
            sparse_aggregation: Optional[bool] = None,
            sparse_policy=None, batched: Optional[bool] = None,
            host_pool=None):
        """Train one workload synchronously on a fresh context.

        Exact historical ``run_workload`` semantics — data generation
        and cache materialization before the measured window, every
        reduction knob on ``spec``, trailing keywords as deprecated
        shims. Returns a :class:`~repro.bench.workloads.WorkloadResult`.
        """
        wl = _resolve_workload(workload)
        ds = wl.spec
        spec = spec_with_legacy(
            spec, "SparkerSession.run",
            parallelism=parallelism, sparse_aggregation=sparse_aggregation,
            sparse_policy=sparse_policy, batched=batched,
            host_pool=host_pool)
        _check_lda_spec(wl, spec)
        sc = SparkerContext(self.config, host_pool=spec.host_pool)
        n_parts = partitions or sc.default_parallelism

        samples, _truth = ds.generate()
        rdd = sc.parallelize(samples, n_parts).cache()
        rdd.count()  # materialize MEMORY_ONLY before the measured window

        if listener is not None:
            sc.event_bus.subscribe(listener)
        recorder = BreakdownRecorder(sc)
        began = sc.now
        model, final_loss = _train(sc, wl, rdd, ds, spec, aggregation,
                                   iterations)
        return _workload_result(workload, self.config, aggregation,
                                iterations, sc, began, recorder, model,
                                final_loss)

    # -------------------------------------------------------------- submit
    def submit(self, workload: str, spec: Optional[AggregationSpec] = None,
               *, pool: Optional[str] = None, tenant: str = "anonymous",
               aggregation: str = "tree", iterations: int = 3,
               partitions: Optional[int] = None, listener=None,
               parallelism: Optional[int] = None,
               sparse_aggregation: Optional[bool] = None,
               sparse_policy=None, batched: Optional[bool] = None) -> JobHandle:
        """Submit one workload to the shared multi-tenant service.

        Returns immediately with a :class:`JobHandle`; the job runs when
        the service reactor is pumped (``handle.result()``,
        ``session.server.drain()``, or any other handle's ``result()``).
        ``pool`` selects the FAIR pool tasks are billed to; ``listener``
        is subscribed to the shared bus for the job's duration only.
        """
        wl = _resolve_workload(workload)
        ds = wl.spec
        spec = spec_with_legacy(
            spec, "SparkerSession.submit",
            parallelism=parallelism, sparse_aggregation=sparse_aggregation,
            sparse_policy=sparse_policy, batched=batched)
        _check_lda_spec(wl, spec)
        spec = service_spec(spec)
        server = self.server
        sc = server.sc

        def body():
            n_parts = partitions or sc.default_parallelism

            def load_dataset():
                samples, _truth = ds.generate()
                rdd = sc.parallelize(samples, n_parts).cache()
                rdd.count()
                return rdd

            rdd = server.shared(("dataset", wl.dataset_name, n_parts),
                                load_dataset)
            if listener is not None:
                sc.event_bus.subscribe(listener)
            try:
                recorder = BreakdownRecorder(sc)
                began = sc.now
                model, final_loss = _train(sc, wl, rdd, ds, spec,
                                           aggregation, iterations)
                return _workload_result(workload, self.config, aggregation,
                                        iterations, sc, began, recorder,
                                        model, final_loss)
            finally:
                if listener is not None:
                    try:
                        sc.event_bus.unsubscribe(listener)
                    except ValueError:  # bus already closed/cleared
                        pass

        record = server.submit(body, pool=pool, tenant=tenant,
                               workload=workload)
        return JobHandle(server, record)

    # ------------------------------------------------------------ teardown
    def close(self) -> None:
        """Close the service (if started); idempotent."""
        if self._server is not None:
            self._server.close()

    def __enter__(self) -> "SparkerSession":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        service = (repr(self._server) if self._server is not None
                   else "service not started")
        return f"<SparkerSession {self.config.name!r} {service}>"
