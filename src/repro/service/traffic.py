"""Open-loop multi-tenant traffic for the job service.

Each :class:`TenantProfile` describes one tenant's submission behaviour:
seeded-Poisson arrival times (exponential gaps), with ``burst`` jobs
submitted back-to-back per arrival to model a tenant launching a
hyper-parameter sweep. :func:`arrival_schedule` materializes the whole
schedule as plain data *before* anything runs — the same profiles + seed
always yield the same :class:`Arrival` list (``random.Random`` seeded
with a string hashes via SHA-512, stable across processes), so the exact
job mix can be replayed concurrently, serialized, or in isolation for
identity checks. :func:`run_open_loop` then drives a session's service
with it in virtual time.

Open-loop means arrivals do not wait for earlier jobs to finish: a slow
service builds a backlog instead of silently throttling the offered load
(the usual closed-loop measurement mistake).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.spec import AggregationSpec
from .server import QuotaExceeded

__all__ = ["TenantProfile", "Arrival", "TrafficResult",
           "arrival_schedule", "run_open_loop"]


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's submission behaviour."""

    name: str
    pool: str = "default"
    #: candidate workload names, sampled uniformly per submission
    workloads: Tuple[str, ...] = ("LR-A", "SVM-A")
    #: candidate aggregation specs, sampled uniformly per submission
    #: (None entries mean the service default)
    specs: Tuple[Optional[AggregationSpec], ...] = (None,)
    #: mean virtual seconds between arrivals (exponential gaps)
    mean_interarrival: float = 30.0
    #: total jobs this tenant submits
    jobs: int = 8
    #: jobs submitted back-to-back per arrival (hyper-parameter sweeps)
    burst: int = 1
    iterations: int = 2
    aggregation: str = "tree"
    partitions: Optional[int] = None


@dataclass(frozen=True)
class Arrival:
    """One materialized submission of the schedule."""

    time: float  # virtual seconds after traffic start
    tenant: str
    pool: str
    workload: str
    spec: Optional[AggregationSpec]
    aggregation: str
    iterations: int
    partitions: Optional[int]

    @property
    def signature(self) -> Tuple:
        """Everything that determines the trained model (not *when* it
        ran) — the dedup key for isolated identity runs."""
        return (self.workload, self.aggregation, self.iterations,
                self.partitions, repr(self.spec))


def arrival_schedule(tenants: Sequence[TenantProfile],
                     seed: int = 0) -> List[Arrival]:
    """The full deterministic schedule, sorted by arrival time.

    Ties (bursts, cross-tenant coincidences) break by tenant name then
    materialization order, so the submission sequence is total-ordered.
    """
    arrivals: List[Arrival] = []
    for profile in tenants:
        rng = random.Random(f"{seed}:{profile.name}")
        now = 0.0
        submitted = 0
        while submitted < profile.jobs:
            now += rng.expovariate(1.0 / profile.mean_interarrival)
            for _ in range(min(profile.burst, profile.jobs - submitted)):
                arrivals.append(Arrival(
                    time=now, tenant=profile.name, pool=profile.pool,
                    workload=rng.choice(profile.workloads),
                    spec=rng.choice(profile.specs),
                    aggregation=profile.aggregation,
                    iterations=profile.iterations,
                    partitions=profile.partitions))
                submitted += 1
    arrivals.sort(key=lambda a: (a.time, a.tenant))
    return arrivals


@dataclass
class TrafficResult:
    """Outcome of one open-loop run."""

    #: (arrival, handle) pairs; handle is None when the quota bounced it
    submissions: List[Tuple[Arrival, Optional[Any]]] = field(
        default_factory=list)
    #: virtual time from traffic start to last completion
    makespan: float = 0.0

    @property
    def handles(self) -> List[Any]:
        return [h for _, h in self.submissions if h is not None]

    @property
    def rejections(self) -> List[Arrival]:
        return [a for a, h in self.submissions if h is None]

    @property
    def latencies(self) -> List[float]:
        return sorted(h.latency for h in self.handles
                      if h.latency is not None)

    def percentile(self, q: float) -> float:
        """Latency percentile over completed jobs (q in [0, 1])."""
        lats = self.latencies
        if not lats:
            return 0.0
        index = min(len(lats) - 1, int(q * len(lats)))
        return lats[index]

    def by_status(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for handle in self.handles:
            counts[handle.status()] = counts.get(handle.status(), 0) + 1
        return counts


def submit_arrival(session, arrival: Arrival):
    """Submit one materialized arrival; the handle, or None on quota."""
    try:
        return session.submit(
            arrival.workload, spec=arrival.spec, pool=arrival.pool,
            tenant=arrival.tenant, aggregation=arrival.aggregation,
            iterations=arrival.iterations, partitions=arrival.partitions)
    except QuotaExceeded:
        return None


def run_open_loop(session, tenants: Sequence[TenantProfile],
                  seed: int = 0) -> TrafficResult:
    """Drive ``session``'s service with all tenants until the last job ends.

    The materialized schedule is submitted by a simulation process on
    the shared virtual clock, so arrival order is part of the
    deterministic event sequence. Quota bounces are recorded, not
    raised. Returns after the reactor drains.
    """
    env = session.server.sc.env
    result = TrafficResult()
    began = env.now
    schedule = arrival_schedule(tenants, seed)
    live = [True]

    def submitter():
        for arrival in schedule:
            wait = began + arrival.time - env.now
            if wait > 0:
                yield env.timeout(wait)
            result.submissions.append(
                (arrival, submit_arrival(session, arrival)))
        live[0] = False

    env.process(submitter(), name="traffic:submitter")
    session.server.cooperator.pump(
        lambda: not live[0] and all(h.done() for h in result.handles))
    result.makespan = env.now - began
    return result
