"""Sparker reproduction: efficient reduction for scalable ML on a
Spark-like engine.

A from-scratch Python reproduction of *Sparker: Efficient Reduction for
More Scalable Machine Learning with Spark* (ICPP '21): a deterministic
discrete-event cluster simulator, a Spark-like RDD engine, the split
aggregation interface with a PDR ring reduce-scatter, in-memory merge, an
MLlib-like model library, and a benchmark harness regenerating every table
and figure of the paper's evaluation. See ``DESIGN.md`` for the system
inventory and ``EXPERIMENTS.md`` for paper-vs-measured results.

Quickstart::

    from repro import SparkerContext, ClusterConfig
    from repro.data import sparse_classification
    from repro.ml import LogisticRegressionWithSGD

    sc = SparkerContext(ClusterConfig.bic(num_nodes=2))
    points, _ = sparse_classification(2000, 500, 10, seed=0)
    rdd = sc.parallelize(points).cache()
    model = LogisticRegressionWithSGD.train(
        rdd, 500, num_iterations=10, aggregation="split")
    print(model.accuracy(points), f"simulated {sc.now:.2f}s")
"""

from .cluster import GB, KB, MB, Cluster, ClusterConfig
from .core import (
    AggregationSpec,
    SpawnRDD,
    split_aggregate,
    tree_aggregate,
    tree_reduce,
)
from .rdd import RDD, SparkerContext, StorageLevel

__version__ = "1.0.0"

__all__ = [
    "SparkerContext",
    "ClusterConfig",
    "Cluster",
    "RDD",
    "StorageLevel",
    "tree_aggregate",
    "tree_reduce",
    "split_aggregate",
    "AggregationSpec",
    "SpawnRDD",
    "KB",
    "MB",
    "GB",
    "__version__",
]
