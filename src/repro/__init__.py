"""Sparker reproduction: efficient reduction for scalable ML on a
Spark-like engine.

A from-scratch Python reproduction of *Sparker: Efficient Reduction for
More Scalable Machine Learning with Spark* (ICPP '21): a deterministic
discrete-event cluster simulator, a Spark-like RDD engine, the split
aggregation interface with a PDR ring reduce-scatter, in-memory merge, an
MLlib-like model library, and a benchmark harness regenerating every table
and figure of the paper's evaluation. See ``DESIGN.md`` for the system
inventory and ``EXPERIMENTS.md`` for paper-vs-measured results.

Quickstart (one workload, classic blocking path)::

    from repro import ClusterConfig, SparkerSession

    session = SparkerSession(ClusterConfig.bic(num_nodes=2))
    result = session.run("LR-A", aggregation="split", iterations=5)
    print(result)

or as a multi-tenant service (see ``repro.service``)::

    with SparkerSession(ClusterConfig.bic()) as session:
        a = session.submit("LR-C", tenant="alice")
        b = session.submit("SVM-A", tenant="bob")
        print(a.result().end_to_end, b.result().end_to_end)

The lower-level building blocks (:class:`SparkerContext`, RDDs, the
aggregation primitives) stay public for custom driver programs.
"""

from .cluster import GB, KB, MB, Cluster, ClusterConfig
from .core import (
    AggregationSpec,
    SpawnRDD,
    split_aggregate,
    tree_aggregate,
    tree_reduce,
)
from .rdd import RDD, SparkerContext, StorageLevel
from .service import JobHandle, SparkerSession

__version__ = "1.1.0"

__all__ = [
    "SparkerSession",
    "JobHandle",
    "SparkerContext",
    "ClusterConfig",
    "Cluster",
    "RDD",
    "StorageLevel",
    "tree_aggregate",
    "tree_reduce",
    "split_aggregate",
    "AggregationSpec",
    "SpawnRDD",
    "KB",
    "MB",
    "GB",
    "__version__",
]
