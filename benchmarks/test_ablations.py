"""Ablations of design choices beyond the paper's own figures.

* treeAggregate depth — Spark's only mitigation knob; shows why tuning
  depth cannot fix the interface problem (§2.4).
* reduce-scatter algorithm under the SAI — the paper argues the interface
  "makes it possible to accelerate Spark's global aggregation using those
  state-of-the-art reduction algorithms" (§7); this ablation swaps the
  ring for the MPI alternatives on the same segments.
* aggregate-then-broadcast vs allreduce — the §6 discussion implies the
  driver gather is the next bottleneck; an allreduce keeps the reduced
  value at the executors and skips the driver round-trip entirely.
* driver result-getter threads — how much of tree aggregation's pain is
  the driver's fetch path.
"""

import dataclasses

import numpy as np
import pytest
from conftest import run_once

from repro import AggregationSpec
from repro.bench import format_table
from repro.cluster import MB, Cluster, ClusterConfig
from repro.comm import MpiCommunicator, ScalableCommunicator, sc_transport
from repro.service import SparkerSession
from repro.serde import SizedPayload
from repro.sim import Environment


def _payload_args():
    return dict(
        seq_op=lambda a, x: a.merge_inplace(x),
        split_op=lambda u, i, n: u.split(i, n),
        reduce_op=lambda a, b: a.merge(b),
        concat_op=SizedPayload.concat,
    )


def _aggregate_once(config, method, sim_bytes, depth=2):
    sc = SparkerSession(config).context()
    n = sc.cluster.total_cores
    data = [SizedPayload(np.ones(64), sim_bytes=sim_bytes)
            for _ in range(n)]
    rdd = sc.parallelize(data, n).cache()
    rdd.count()
    zero = lambda: SizedPayload(np.zeros(64), sim_bytes=sim_bytes)  # noqa: E731
    t0 = sc.now
    if method == "split":
        rdd.split_aggregate(zero, spec=AggregationSpec(parallelism=4),
                            **_payload_args())
    else:
        rdd.tree_aggregate(zero, lambda a, x: a.merge_inplace(x),
                           lambda a, b: a.merge(b), depth=depth)
    return sc.now - t0


def test_ablation_tree_depth(benchmark, record):
    """Deeper trees trade driver pressure for extra shuffle levels; none
    approaches split aggregation."""
    config = ClusterConfig.bic(num_nodes=8)

    def sweep():
        rows = {}
        for depth in (1, 2, 3):
            rows[f"tree depth={depth}"] = _aggregate_once(
                config, "tree", 64 * MB, depth=depth)
        rows["split"] = _aggregate_once(config, "split", 64 * MB)
        return rows

    rows = run_once(benchmark, sweep)
    table = format_table(["Method", "64MB aggregation (s)"],
                         [(k, round(v, 3)) for k, v in rows.items()],
                         title="Ablation: treeAggregate depth vs split "
                               "(8-node BIC)")
    record("ablation_tree_depth", table)

    tree_times = [v for k, v in rows.items() if k.startswith("tree")]
    # No depth setting gets within 2x of split aggregation.
    assert min(tree_times) > 2 * rows["split"]


def test_ablation_reduce_scatter_algorithms(benchmark, record):
    """The SAI admits any splitting reduction; compare ring (Sparker's
    choice) against the MPI alternatives on identical segments."""
    def sweep():
        out = {}
        for label in ("sc-ring", "mpi-ring", "pairwise",
                      "recursive_halving"):
            env = Environment()
            cluster = Cluster(env, ClusterConfig.bic(num_nodes=8))
            rng = np.random.default_rng(1)
            n = cluster.num_executors
            values = [SizedPayload(rng.random(64), sim_bytes=64 * MB)
                      for _ in range(n)]
            split = lambda u, i, k: u.split(i, k)  # noqa: E731
            reduce_ = lambda a, b: a.merge(b)  # noqa: E731
            if label == "sc-ring":
                comm = ScalableCommunicator(cluster, parallelism=4)
                proc = env.process(comm.reduce_scatter(values, split,
                                                       reduce_))
            else:
                algorithm = {"mpi-ring": "ring", "pairwise": "pairwise",
                             "recursive_halving": "recursive_halving"}[label]
                comm = MpiCommunicator(cluster,
                                       transport=sc_transport(
                                           cluster.config))
                proc = env.process(comm.reduce_scatter(
                    values, split, reduce_, algorithm=algorithm))
            env.run(until=proc)
            out[label] = env.now
        return out

    rows = run_once(benchmark, sweep)
    table = format_table(
        ["Algorithm", "64MB reduce-scatter, 48 executors (s)"],
        [(k, round(v, 3)) for k, v in rows.items()],
        title="Ablation: reduce-scatter algorithm under the SAI "
              "(JVM transport)")
    record("ablation_reduce_scatter_algorithms", table)

    # Bandwidth-optimal algorithms (rings) beat recursive halving for
    # large messages on a multi-executor-per-node cluster; the PDR's
    # parallel channels beat a single-channel ring.
    assert rows["sc-ring"] < rows["mpi-ring"]
    assert rows["mpi-ring"] < rows["recursive_halving"]


def test_ablation_allreduce_vs_gather_broadcast(benchmark, record):
    """Keeping the reduced value at the executors (allreduce) removes the
    driver round-trip that split aggregation still pays per iteration.

    Finding: end-to-end time is comparable (the ring allgather pays the
    same capped JVM channels the gather avoids), but the allreduce moves
    ZERO bytes through the driver — directly addressing the §6 "driver is
    the new bottleneck" limitation.
    """
    def sweep():
        out = {}
        for label in ("reduce_scatter+gather+broadcast", "allreduce"):
            env = Environment()
            cluster = Cluster(env, ClusterConfig.bic(num_nodes=8))
            comm = ScalableCommunicator(cluster, parallelism=4)
            n = comm.size
            values = [SizedPayload(np.ones(64), sim_bytes=64 * MB)
                      for _ in range(n)]
            split = lambda u, i, k: u.split(i, k)  # noqa: E731
            reduce_ = lambda a, b: a.merge(b)  # noqa: E731
            driver_before = cluster.network.bytes_transferred
            if label == "allreduce":
                results = env.run(until=env.process(comm.allreduce(
                    values, split, reduce_, SizedPayload.concat)))
                # Functional benefit: every rank holds the full sum.
                for value in results:
                    np.testing.assert_allclose(value.data, float(n))
                driver_bytes = 0.0
            else:
                result = env.run(until=env.process(
                    comm.reduce_scatter_gather(
                        values, split, reduce_, SizedPayload.concat)))
                np.testing.assert_allclose(result.data, float(n))
                # Next iteration would broadcast the value back out; the
                # driver touches the aggregator twice (in, then out).
                bcast = env.process(cluster.network.broadcast_tree(
                    cluster.driver_node, cluster.nodes, result.sim_bytes))
                env.run(until=bcast)
                driver_bytes = 2 * result.sim_bytes
            out[label] = (env.now, driver_bytes)
        return out

    rows = run_once(benchmark, sweep)
    table = format_table(
        ["Strategy", "Round-trip (s)", "Bytes through driver (MB)"],
        [(k, round(t, 3), round(d / MB)) for k, (t, d) in rows.items()],
        title="Ablation: driver gather+broadcast vs executor-side "
              "allreduce (64MB, 48 executors)")
    record("ablation_allreduce", table)
    gather_time, gather_driver = rows["reduce_scatter+gather+broadcast"]
    ar_time, ar_driver = rows["allreduce"]
    # Comparable end-to-end cost...
    assert ar_time < 2 * gather_time
    # ...but the allreduce frees the driver entirely.
    assert ar_driver == 0
    assert gather_driver > 0


def test_ablation_driver_result_threads(benchmark, record):
    """Tree aggregation's driver fetch path: result-getter pool width."""
    def sweep():
        out = {}
        for threads in (1, 4):
            config = dataclasses.replace(ClusterConfig.bic(num_nodes=8),
                                         driver_result_threads=threads)
            out[threads] = _aggregate_once(config, "tree", 64 * MB)
        return out

    rows = run_once(benchmark, sweep)
    table = format_table(
        ["Result-getter threads", "64MB tree aggregation (s)"],
        [(k, round(v, 3)) for k, v in sorted(rows.items())],
        title="Ablation: driver result-deserialization concurrency")
    record("ablation_driver_threads", table)
    assert rows[4] < rows[1]
