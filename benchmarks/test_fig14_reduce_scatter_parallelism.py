"""Figure 14: reduce-scatter vs channel parallelism + topology awareness.

Paper (48 executors, 256MB): parallelism 1 -> 8 improves 3.04s -> 0.99s
(3.06x); hostname-sorted (topology-aware) ring beats id-sorted 0.99s vs
2.77s (2.76x).
"""

from conftest import run_once

from repro.bench import fig14_reduce_scatter_parallelism, format_table


def test_fig14_reduce_scatter_parallelism(benchmark, record):
    result = run_once(benchmark, fig14_reduce_scatter_parallelism,
                      parallelisms=(1, 2, 4, 8))
    par = result["parallelism"]
    topo = result["topology"]
    table = format_table(
        ["Parallelism", "Reduce-scatter (s)"],
        [(p, round(t, 3)) for p, t in sorted(par.items())],
        title="Figure 14: 48-executor 256MB reduce-scatter (BIC)")
    topo_table = format_table(
        ["Executor ordering", "Reduce-scatter (s)"],
        [(k, round(v, 3)) for k, v in topo.items()])
    summary = (f"\nparallelism speedup 1->8: {par[1] / par[8]:.2f}x "
               f"(paper 3.06x)"
               f"\ntopology-awareness speedup: "
               f"{topo['id-sorted'] / topo['hostname-sorted']:.2f}x "
               f"(paper 2.76x)")
    record("fig14_reduce_scatter_parallelism",
           table + "\n\n" + topo_table + summary)

    # More channels help, with diminishing returns past 4.
    assert par[1] > par[2] > par[4]
    assert par[4] / par[8] < 1.5
    assert 2.0 < par[1] / par[8] < 6.0  # paper: 3.06x
    # Hostname sorting beats registration order substantially.
    assert topo["id-sorted"] / topo["hostname-sorted"] > 1.5
