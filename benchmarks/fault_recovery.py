"""Fault-recovery benchmark: writes ``BENCH_fault_recovery.json``.

Runs one split-aggregation workload fault-free, then under a seeded
fault matrix — crash before the ring (stage boundary), crash mid-ring
(hop-triggered), message drops on the ring fabric, and a straggling
executor — and reports the *recovery overhead* in virtual seconds for
each scenario. Every faulted run must converge to a bit-identical result
vs the fault-free baseline (the workload is integer-valued, so float
addition is exact); any mismatch exits non-zero.

Usage::

    PYTHONPATH=src python benchmarks/fault_recovery.py          # full
    PYTHONPATH=src python benchmarks/fault_recovery.py --smoke  # CI gate

``--smoke`` runs the four named scenarios only; the full run adds a
seeded random-plan sweep on top.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter
from pathlib import Path

import numpy as np

from repro import AggregationSpec
from repro.cluster import MB, ClusterConfig
from repro.faults import (
    AtRingHop,
    AtStageBoundary,
    ExecutorCrash,
    FaultController,
    FaultPlan,
    MessageDrop,
    RecoveryPolicy,
    Straggler,
    random_plan,
)
from repro.service import SparkerSession
from repro.serde import SizedPayload

NODES = 4
WIDTH = 256
NBYTES = 4 * MB
N_ITEMS = 32
N_PARTITIONS = 8
PARALLELISM = 4
SEED = 2024
RANDOM_SWEEP_SEEDS = range(5)

RECOVERY = RecoveryPolicy(recv_timeout=0.25, max_ring_attempts=3)


def run_once(plan: FaultPlan | None) -> dict:
    sc = SparkerSession(ClusterConfig.laptop(num_nodes=NODES)).context()
    controller = FaultController(sc, plan, RECOVERY).arm() \
        if plan is not None else None
    data = [SizedPayload(np.full(WIDTH, float(i)), sim_bytes=NBYTES)
            for i in range(N_ITEMS)]
    rdd = sc.parallelize(data, N_PARTITIONS)
    zero = lambda: SizedPayload(np.zeros(WIDTH), sim_bytes=NBYTES)  # noqa: E731

    began = time.perf_counter()
    result = rdd.split_aggregate(
        zero, lambda a, x: a.merge_inplace(x),
        lambda u, i, n: u.split(i, n),
        lambda a, b: a.merge(b),
        SizedPayload.concat, AggregationSpec(parallelism=PARALLELISM))
    wall = time.perf_counter() - began

    return {
        "result": result.data.tobytes(),
        "virtual_seconds": sc.now,
        "wall_seconds": wall,
        "injected": [f.fault for f in controller.injected]
        if controller else [],
        "actions": [a.action for a in controller.actions]
        if controller else [],
    }


def scenario_matrix() -> dict:
    """The seeded fault matrix (executor ids are stable across runs)."""
    probe = SparkerSession(ClusterConfig.laptop(num_nodes=NODES)).context()
    eids = [e.executor_id for e in probe.executors]
    rng_pick = eids[SEED % len(eids)]
    return {
        "crash_before_ring": FaultPlan(faults=(ExecutorCrash(
            rng_pick, AtStageBoundary(stage_kind="reduced_result",
                                      edge="completed")),), seed=SEED),
        "crash_mid_ring": FaultPlan(faults=(ExecutorCrash(
            eids[1], AtRingHop(1)),), seed=SEED),
        "message_drop": FaultPlan(faults=(MessageDrop(count=2, skip=3),),
                                  seed=SEED),
        "straggler": FaultPlan(faults=(Straggler(
            eids[2], factor=4.0, start=0.0),), seed=SEED),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="named scenarios only (CI chaos gate)")
    args = parser.parse_args()

    baseline = run_once(None)
    scenarios = scenario_matrix()
    if not args.smoke:
        probe = SparkerSession(ClusterConfig.laptop(num_nodes=NODES)).context()
        eids = [e.executor_id for e in probe.executors]
        for seed in RANDOM_SWEEP_SEEDS:
            scenarios[f"random_seed_{seed}"] = random_plan(
                seed, eids, horizon=baseline["virtual_seconds"],
                n_crashes=1, n_drops=1)

    report_scenarios = {}
    failures = []
    for name, plan in scenarios.items():
        run = run_once(plan)
        identical = run["result"] == baseline["result"]
        if not identical:
            failures.append(name)
        overhead = run["virtual_seconds"] - baseline["virtual_seconds"]
        report_scenarios[name] = {
            "virtual_seconds": run["virtual_seconds"],
            "recovery_overhead_seconds": overhead,
            "recovery_overhead_ratio":
                overhead / baseline["virtual_seconds"],
            "result_bit_identical": identical,
            "faults_injected": dict(Counter(run["injected"])),
            "recovery_actions": dict(Counter(run["actions"])),
        }
        status = "ok" if identical else "RESULT MISMATCH"
        print(f"{name:24s} {run['virtual_seconds']:.4f}s virtual "
              f"(+{overhead:.4f}s) {status}")

    report = {
        "benchmark": "fault_recovery",
        "configuration": {
            "cluster": "laptop", "nodes": NODES,
            "aggregator_bytes": NBYTES, "items": N_ITEMS,
            "partitions": N_PARTITIONS, "parallelism": PARALLELISM,
            "recv_timeout": RECOVERY.recv_timeout,
            "max_ring_attempts": RECOVERY.max_ring_attempts,
            "seed": SEED,
            "smoke": args.smoke,
        },
        "baseline_virtual_seconds": baseline["virtual_seconds"],
        "scenarios": report_scenarios,
        "all_bit_identical": not failures,
        "notes": (
            "Recovery overhead is virtual (simulated) time added by "
            "detection + lineage recompute + ring rebuild over the "
            "fault-free run of the identical workload. Bit-identity of "
            "the final weights is the convergence gate: the workload is "
            "integer-valued, so any recovery regrouping that changes the "
            "result is a correctness bug, not roundoff."
        ),
    }
    target = (Path(__file__).resolve().parent.parent
              / "BENCH_fault_recovery.json")
    if not args.smoke:
        target.write_text(json.dumps(report, indent=2) + "\n",
                          encoding="utf-8")
        print(f"\nwrote {target}")
    else:
        print(json.dumps(report, indent=2))
    if failures:
        print(f"FAILED: result mismatch in {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
