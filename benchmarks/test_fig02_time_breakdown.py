"""Figure 2: per-workload time decomposition on 8-node BIC.

Paper: tree aggregation occupies 67.69% (geomean) of end-to-end time —
aggregation is MLlib's hot-spot. Our harness measures the training loop
only (the paper's logs cover the whole application), so the aggregation
share runs higher; the qualitative claim under test is that aggregation
dominates every workload.
"""

from conftest import run_once

from repro.bench import fig2_time_breakdown, format_table, geomean


def test_fig02_time_breakdown(benchmark, record):
    rows = run_once(benchmark, fig2_time_breakdown, iterations=2)
    table = format_table(
        ["Workload", "Aggregation (s)", "Non-agg (s)", "Driver (s)",
         "Agg share"],
        [(name, round(b.aggregation, 2), round(b.non_agg, 2),
          round(b.driver, 2), f"{b.agg_fraction * 100:.1f}%")
         for name, b in rows],
        title="Figure 2: time decomposition per workload (8-node BIC)")
    fractions = [b.agg_fraction for _name, b in rows]
    summary = (f"\ngeomean aggregation share: "
               f"{geomean(fractions) * 100:.1f}% "
               f"(paper: 67.7% of whole-application time)")
    record("fig02_time_breakdown", table + summary)

    # Aggregation is the hot-spot in every workload.
    for name, b in rows:
        assert b.agg_fraction > 0.5, f"{name}: aggregation not dominant"
    assert geomean(fractions) > 0.6
