"""Tables 1-3: configurations, datasets, models (paper §2.1)."""

from conftest import run_once

from repro.bench import table1_clusters, table2_datasets, table3_models
from repro.cluster import ClusterConfig
from repro.data import DATASETS


def test_table1_clusters(benchmark, record):
    text = run_once(benchmark, table1_clusters)
    record("table1_clusters", text)
    bic, aws = ClusterConfig.bic(), ClusterConfig.aws()
    assert bic.total_cores == 192
    assert aws.total_cores == 960


def test_table2_datasets(benchmark, record):
    text = run_once(benchmark, table2_datasets)
    record("table2_datasets", text)
    # The relative shapes the paper's analysis depends on.
    assert DATASETS["kdd12"].paper_features > \
        50 * DATASETS["avazu"].paper_features
    assert DATASETS["nytimes"].paper_features > \
        3 * DATASETS["enron"].paper_features
    for spec in DATASETS.values():
        assert spec.size_scale > 1
        assert spec.compute_scale > 1


def test_table3_models(benchmark, record):
    text = run_once(benchmark, table3_models)
    record("table3_models", text)
    assert "Logistic Regression" in text
    assert "SVM" in text
    assert "LDA" in text
