"""Figure 4: LDA-N strong scaling on AWS (Spark), decomposed.

Paper (8 -> 960 cores): computation 272.36s -> 58.39s (4.66x better),
reduction 26.38s -> 111.23s (4.22x worse); the reduction share of
end-to-end time grows from 6.95% to 44.55% — reduction gradually
dominates and caps scalability.
"""

from conftest import run_once

from repro.bench import fig4_lda_scaling_aws, format_table
from repro.bench.experiments import breakdown_rows


def test_fig04_lda_aws_scaling(benchmark, record):
    rows = run_once(benchmark, fig4_lda_scaling_aws,
                    core_counts=(8, 96, 192, 480, 960), iterations=2)
    table = format_table(
        ["Cores", "Agg-compute (s)", "Agg-reduce (s)", "Driver (s)",
         "Non-agg (s)", "Total (s)"],
        [tuple(round(v, 2) if isinstance(v, float) else v for v in row)
         for row in breakdown_rows(rows)],
        title="Figure 4: LDA-N decomposed end-to-end time on AWS (Spark)")
    first, last = rows[0][1].breakdown, rows[-1][1].breakdown
    share_first = first.agg_reduce / first.total
    share_last = last.agg_reduce / last.total
    summary = (f"\nreduce share of end-to-end: {share_first * 100:.1f}% "
               f"at 8 cores -> {share_last * 100:.1f}% at 960 cores "
               f"(paper: 6.95% -> 44.55%)")
    record("fig04_lda_aws_scaling", table + summary)

    assert last.agg_compute < first.agg_compute / 2.5
    assert last.agg_reduce > first.agg_reduce
    # Reduction gradually dominates with scale.
    assert share_last > 2 * share_first
    assert share_last > 0.3
