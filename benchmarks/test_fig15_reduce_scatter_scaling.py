"""Figure 15: reduce-scatter scalability, SC vs MPI reference.

Paper (BIC, 6 -> 48 executors): at 256MB the scalable communicator is
nearly flat (784.13ms -> 993.35ms, 1.27x); at 256KB time grows about
proportionally with executors (1.51ms -> 7.98ms, 5.30x) because small
messages are latency-bound.
"""

from conftest import run_once

from repro.bench import fig15_reduce_scatter_scaling, format_table
from repro.cluster import KB, MB


def test_fig15_reduce_scatter_scaling(benchmark, record):
    rows = run_once(benchmark, fig15_reduce_scatter_scaling,
                    executor_counts=(6, 12, 24, 48),
                    sizes=(256 * KB, 256 * MB))
    table = format_table(
        ["Message", "Executors", "SC (ms)", "MPI (ms)"],
        [(f"{int(b / KB)}KB" if b < MB else f"{int(b / MB)}MB",
          n, round(sc * 1e3, 2), round(mpi * 1e3, 2))
         for b, n, sc, mpi in rows],
        title="Figure 15: reduce-scatter scalability (BIC)")

    small = {n: sc for b, n, sc, _m in rows if b == 256 * KB}
    big = {n: sc for b, n, sc, _m in rows if b == 256 * MB}
    summary = (f"\n256KB SC growth 6->48 executors: "
               f"{small[48] / small[6]:.2f}x (paper 5.30x)"
               f"\n256MB SC growth 6->48 executors: "
               f"{big[48] / big[6]:.2f}x (paper 1.27x)")
    record("fig15_reduce_scatter_scaling", table + summary)

    # Small messages: latency-bound, grows roughly with ring length.
    assert small[48] / small[6] > 3.0
    # Large messages: bandwidth-optimal ring, nearly flat.
    assert 0.7 < big[48] / big[6] < 1.6
    # Absolute regime matches the paper's (hundreds of ms at 256MB).
    assert 0.3 < big[48] < 3.0
