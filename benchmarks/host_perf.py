"""Host-performance benchmark: writes ``BENCH_host_perf.json``.

Measures what the *host* pays to run the standard LR scale sweep (LR-A and
LR-C on BIC clusters of 2/4/8 nodes, tree and split aggregation) — the
denominator of every future experiment this repo runs:

* end-to-end wall-clock per sweep, serially and at host-pool sizes 1/2/8,
* simulator throughput (kernel events/sec) and task throughput (tasks/sec),
* **parity checksums**: SHA-256 of every trained weight vector plus the
  exact final virtual times, asserted byte-equal across all pool sizes
  (the bit-identity contract of DESIGN.md §9),
* a host-time attribution (sim-core / user-compute / serde / other) from
  :func:`repro.bench.profile.profile_host` for one representative config,
* ``host_cpus`` — pool speedups are only meaningful relative to it: on a
  single-CPU host the pool cannot beat serial and the numbers say so.

Usage::

    PYTHONPATH=src python benchmarks/host_perf.py           # full sweep
    PYTHONPATH=src python benchmarks/host_perf.py --smoke   # CI gate

``--smoke`` runs a reduced sweep and exits non-zero on a parity mismatch
between pool sizes or when simulator throughput falls below 80% of the
committed ``BENCH_host_perf.json`` baseline (the >20%-regression CI gate).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import AggregationSpec
from repro.bench.profile import profile_host
from repro.bench.workloads import run_workload
from repro.cluster import ClusterConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_host_perf.json"

#: the standard LR scale sweep (workload, nodes, aggregation, iterations)
FULL_SWEEP = [
    (name, nodes, agg, 3)
    for name in ("LR-A", "LR-C")
    for nodes in (2, 4, 8)
    for agg in ("tree", "split")
]

#: reduced sweep for the CI smoke gate
SMOKE_SWEEP = [
    ("LR-A", 2, "tree", 2),
    ("LR-A", 4, "tree", 2),
]

FULL_POOLS = (1, 2, 8)
#: the smoke gate checks the full pool matrix too — the parity checksums
#: must stay byte-identical across every pool size on the vectorized paths
SMOKE_POOLS = (1, 2, 8)

#: tolerated events/sec regression against the committed baseline
REGRESSION_SLACK = 0.20


def _checksum(weights) -> str:
    """SHA-256 over the weight vector's raw float64 bytes."""
    if weights is None:
        return ""
    arr = np.ascontiguousarray(np.asarray(weights, dtype=np.float64))
    return hashlib.sha256(arr.tobytes()).hexdigest()


def run_sweep(sweep, pool=None) -> dict:
    """Run every sweep config; return wall-clock and per-run rows."""
    rows = []
    began = time.perf_counter()
    for name, nodes, agg, iters in sweep:
        result = run_workload(name, ClusterConfig.bic(nodes),
                              aggregation=agg, iterations=iters,
                              spec=AggregationSpec(host_pool=pool))
        rows.append({
            "workload": name,
            "nodes": nodes,
            "aggregation": agg,
            "iterations": iters,
            "end_to_end": result.end_to_end,
            "final_loss": result.final_loss,
            "weights_sha256": _checksum(result.final_weights),
            "sim_events": result.sim_events,
            "tasks_run": result.tasks_run,
        })
    wall = time.perf_counter() - began
    events = sum(row["sim_events"] for row in rows)
    tasks = sum(row["tasks_run"] for row in rows)
    return {
        "wall_seconds": wall,
        "sim_events": events,
        "tasks_run": tasks,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "tasks_per_sec": tasks / wall if wall > 0 else 0.0,
        "rows": rows,
    }


def best_of(n: int, sweep, pool=None) -> dict:
    """Best-of-``n`` sweep by events/sec (de-noises sub-second runs)."""
    runs = [run_sweep(sweep, pool=pool) for _ in range(n)]
    return max(runs, key=lambda run: run["events_per_sec"])


def check_parity(serial: dict, pooled: dict) -> list:
    """Mismatch descriptions between a pooled sweep and the serial one."""
    problems = []
    for ref, row in zip(serial["rows"], pooled["rows"]):
        tag = f"{row['workload']}/bic{row['nodes']}/{row['aggregation']}"
        if row["end_to_end"] != ref["end_to_end"]:
            problems.append(
                f"{tag}: virtual time {row['end_to_end']!r}"
                f" != serial {ref['end_to_end']!r}")
        if row["weights_sha256"] != ref["weights_sha256"]:
            problems.append(f"{tag}: weight checksum diverged")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Host wall-clock / throughput / parity benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep + CI gate against the committed"
                             " baseline; writes nothing")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="output path for the full run's JSON")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_OUT,
                        help="committed baseline the smoke gate compares to")
    args = parser.parse_args(argv)

    sweep = SMOKE_SWEEP if args.smoke else FULL_SWEEP
    pools = SMOKE_POOLS if args.smoke else FULL_POOLS

    serial = (best_of(3, sweep, pool=None) if args.smoke
              else run_sweep(sweep, pool=None))
    print(f"serial: {serial['wall_seconds']:.2f}s wall,"
          f" {serial['events_per_sec']:,.0f} events/s,"
          f" {serial['tasks_per_sec']:,.0f} tasks/s")

    pool_results = {}
    parity_problems = []
    for size in pools:
        pooled = run_sweep(sweep, pool=size)
        pooled["speedup_vs_serial"] = (
            serial["wall_seconds"] / pooled["wall_seconds"]
            if pooled["wall_seconds"] > 0 else 0.0)
        problems = check_parity(serial, pooled)
        pooled["parity_ok"] = not problems
        parity_problems.extend(f"pool={size}: {p}" for p in problems)
        pool_results[str(size)] = pooled
        print(f"pool={size}: {pooled['wall_seconds']:.2f}s wall,"
              f" {pooled['speedup_vs_serial']:.2f}x vs serial,"
              f" parity {'OK' if not problems else 'FAILED'}")

    for problem in parity_problems:
        print("PARITY MISMATCH:", problem, file=sys.stderr)

    if args.smoke:
        ok = not parity_problems
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, ValueError):
            print(f"no readable baseline at {args.baseline};"
                  " skipping throughput gate")
            baseline = None
        if baseline is not None:
            # Gate against the baseline's *smoke-sweep* throughput: the
            # full sweep amortizes per-run setup far better, so its
            # events/sec is not comparable to a smoke run's.
            reference = baseline.get("smoke_reference",
                                     baseline["serial"])
            floor = ((1.0 - REGRESSION_SLACK)
                     * reference["events_per_sec"])
            actual = serial["events_per_sec"]
            print(f"throughput gate: {actual:,.0f} events/s"
                  f" vs floor {floor:,.0f}")
            if actual < floor:
                print("REGRESSION: events/sec below 80% of committed"
                      " baseline", file=sys.stderr)
                ok = False
        print("smoke:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    # One representative config under the attribution profiler.
    _result, breakdown = profile_host(
        run_workload, "LR-A", ClusterConfig.bic(8),
        aggregation="tree", iterations=3)
    print(breakdown)

    # The smoke sweep's own throughput, so the CI gate compares like
    # with like (a smoke run cannot amortize setup like the full sweep).
    smoke_reference = best_of(3, SMOKE_SWEEP, pool=None)
    smoke_reference.pop("rows")
    print(f"smoke reference: {smoke_reference['events_per_sec']:,.0f}"
          " events/s")

    payload = {
        "benchmark": "host_perf",
        "host_cpus": os.cpu_count(),
        "sweep": [
            {"workload": w, "nodes": n, "aggregation": a, "iterations": i}
            for w, n, a, i in sweep
        ],
        "serial": serial,
        "smoke_reference": smoke_reference,
        "pools": pool_results,
        "parity_ok": not parity_problems,
        "host_time_attribution": breakdown.as_dict(),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if not parity_problems else 1


if __name__ == "__main__":
    sys.exit(main())
