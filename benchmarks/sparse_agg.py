"""Density-adaptive aggregation benchmark: writes ``BENCH_sparse_agg.json``.

Compares classic dense aggregation against the density-adaptive sparse
path (seqOp accumulates (index, value) pairs, every ring send re-evaluates
the SparCML-style wire-format switch) on three regimes:

* ``lr_ultra_sparse`` — LR over a 50k-dim space whose features live on a
  0.8%-density support: the summed gradient stays sparse end-to-end, so
  adaptive mode must cut both bytes-on-wire and simulated aggregation
  time;
* ``lr_mid_density`` — a support wide enough that merges cross the
  densify threshold mid-reduction (the switch points are counted);
* ``lr_dense_control`` — features covering the whole (small) space: the
  payload densifies immediately and adaptive mode must stay within noise
  of dense mode.

Also times the opt-in per-partition CSR batched gradient kernel against
the per-sample fold (identical virtual time by construction; the win is
host wall-clock).

Usage::

    PYTHONPATH=src python benchmarks/sparse_agg.py          # full run
    PYTHONPATH=src python benchmarks/sparse_agg.py --smoke  # CI gate

``--smoke`` runs only the smallest sparse configuration and exits
non-zero if adaptive mode regresses simulated aggregation time or fails
to save bytes-on-wire — the CI bench-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import AggregationSpec
from repro.bench.experiments import sparse_agg_comparison
from repro.cluster import ClusterConfig
from repro.data import concentrated_classification, sparse_classification
from repro.ml import LogisticRegressionWithSGD, clear_csr_cache
from repro.service import SparkerSession

#: simulated-agg-time slack for the dense-regime control and the smoke
#: gate (the adaptive path must never be meaningfully slower)
NOISE = 0.01

CONFIGS = {
    # name: (generator kwargs, num_features, expected_regime)
    "lr_ultra_sparse": dict(
        n_samples=600, n_features=50_000, nnz_per_sample=10,
        support_size=400, seed=7),
    "lr_mid_density": dict(
        n_samples=1_200, n_features=4_000, nnz_per_sample=20,
        support_size=2_400, seed=11),
}
DENSE_CONTROL = dict(n_samples=800, n_features=500, nnz_per_sample=40,
                     seed=105)

NODES = 4
ITERATIONS = 2


def points_for(name: str):
    if name == "lr_dense_control":
        pts, _ = sparse_classification(**DENSE_CONTROL)
        return pts, DENSE_CONTROL["n_features"]
    kwargs = CONFIGS[name]
    pts, _ = concentrated_classification(**kwargs)
    return pts, kwargs["n_features"]


def run_config(name: str) -> dict:
    pts, dim = points_for(name)
    res = sparse_agg_comparison(
        pts, dim, config=ClusterConfig.bic(num_nodes=NODES),
        iterations=ITERATIONS)
    dense, adaptive = res["dense"], res["adaptive"]
    bit_identical = bool(
        np.array_equal(dense.pop("weights"), adaptive.pop("weights")))
    return {
        "num_features": dim,
        "num_samples": len(pts),
        "dense": dense,
        "adaptive": adaptive,
        "bit_identical_weights": bit_identical,
        "bytes_saved": adaptive["bytes_saved"],
        "wire_reduction": (
            dense["ring_wire_bytes"] / adaptive["ring_wire_bytes"]
            if adaptive["ring_wire_bytes"] > 0 else 1.0),
        "agg_time_delta": adaptive["agg_time"] - dense["agg_time"],
    }


def run_batched_microbench(repeats: int = 3) -> dict:
    """Wall-clock of the per-partition CSR kernel vs the per-sample fold."""
    pts, _ = concentrated_classification(
        n_samples=4_000, n_features=20_000, nnz_per_sample=30,
        support_size=4_000, seed=13)
    dim = 20_000
    walls = {"per_sample": [], "batched": []}
    virtual = {}
    for _ in range(repeats):
        for mode, batched in (("per_sample", False), ("batched", True)):
            clear_csr_cache()
            sc = SparkerSession(ClusterConfig.bic(num_nodes=2)).context()
            rdd = sc.parallelize(pts, sc.default_parallelism).cache()
            rdd.count()
            began = time.perf_counter()
            LogisticRegressionWithSGD.train(
                rdd, dim, num_iterations=3, aggregation="split",
                spec=AggregationSpec(sparse_aggregation=True,
                                     batched=batched))
            walls[mode].append(time.perf_counter() - began)
            virtual[mode] = sc.now
    best = {mode: min(times) for mode, times in walls.items()}
    return {
        "samples": len(pts),
        "iterations": 3,
        "wall_seconds_best": best,
        "speedup": best["per_sample"] / best["batched"],
        "virtual_seconds": virtual,
        "virtual_time_identical":
            virtual["per_sample"] == virtual["batched"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Dense vs density-adaptive aggregation benchmark.")
    parser.add_argument("--smoke", action="store_true",
                        help="smallest sparse config only; exit non-zero "
                             "if adaptive mode regresses")
    args = parser.parse_args(argv)

    if args.smoke:
        result = run_config("lr_ultra_sparse")
        print(json.dumps({"lr_ultra_sparse": result}, indent=2))
        ok = (result["bit_identical_weights"]
              and result["bytes_saved"] > 0
              and result["adaptive"]["agg_time"]
              <= result["dense"]["agg_time"] * (1.0 + NOISE))
        print("smoke:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    report = {
        "benchmark": "sparse_agg",
        "configuration": {
            "cluster": "BIC", "nodes": NODES, "iterations": ITERATIONS,
            "aggregation": "split", "parallelism": 4,
        },
        "configs": {},
    }
    for name in (*CONFIGS, "lr_dense_control"):
        report["configs"][name] = run_config(name)
        print(f"ran {name}")
    report["batched_microbench"] = run_batched_microbench()

    sparse_cfg = report["configs"]["lr_ultra_sparse"]
    control = report["configs"]["lr_dense_control"]
    report["acceptance"] = {
        "sparse_saves_bytes": sparse_cfg["bytes_saved"] > 0,
        "sparse_saves_agg_time": sparse_cfg["agg_time_delta"] < 0,
        "dense_control_within_noise": (
            abs(control["agg_time_delta"])
            <= NOISE * max(control["dense"]["agg_time"], 1e-12)),
        "all_bit_identical": all(
            c["bit_identical_weights"]
            for c in report["configs"].values()),
        "batched_faster_wall_clock":
            report["batched_microbench"]["speedup"] > 1.0,
    }

    target = Path(__file__).resolve().parent.parent / "BENCH_sparse_agg.json"
    target.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report["acceptance"], indent=2))
    print(f"wrote {target}")
    return 0 if all(report["acceptance"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
