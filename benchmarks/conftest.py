"""Shared helpers for the figure-regeneration benchmark suite.

Every benchmark regenerates one table or figure of the paper, prints the
rows the paper plots, saves them under ``benchmarks/results/`` (the
artifacts EXPERIMENTS.md is built from), and asserts the *qualitative*
shape — who wins, monotonicity, crossovers — never absolute numbers.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record():
    """Print a rendered table and persist it under benchmarks/results/."""
    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                                 encoding="utf-8")
        print()
        print(text)

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run a simulation exactly once under pytest-benchmark.

    These benchmarks measure *simulated* time; wall-clock repetition adds
    nothing but hours, so rounds/iterations are pinned to 1.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
