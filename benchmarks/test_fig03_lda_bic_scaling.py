"""Figure 3: LDA-N strong scaling on BIC (Spark), decomposed.

Paper (24 -> 192 cores, whole runs): computation 1152.38s -> 342.43s
(4.47x better) while reduction *increased* 111.05s -> 187.48s (1.69x
worse) — reduction is the scalability bottleneck.
"""

from conftest import run_once

from repro.bench import fig3_lda_scaling_bic, format_table
from repro.bench.experiments import breakdown_rows


def test_fig03_lda_bic_scaling(benchmark, record):
    rows = run_once(benchmark, fig3_lda_scaling_bic,
                    core_counts=(24, 48, 96, 192), iterations=2)
    table = format_table(
        ["Cores", "Agg-compute (s)", "Agg-reduce (s)", "Driver (s)",
         "Non-agg (s)", "Total (s)"],
        [tuple(round(v, 2) if isinstance(v, float) else v for v in row)
         for row in breakdown_rows(rows)],
        title="Figure 3: LDA-N decomposed end-to-end time on BIC (Spark)")
    first, last = rows[0][1].breakdown, rows[-1][1].breakdown
    summary = (f"\ncompute 24->192 cores: {first.agg_compute:.1f}s -> "
               f"{last.agg_compute:.1f}s "
               f"({first.agg_compute / last.agg_compute:.2f}x better; "
               f"paper 4.47x)"
               f"\nreduce  24->192 cores: {first.agg_reduce:.1f}s -> "
               f"{last.agg_reduce:.1f}s "
               f"({last.agg_reduce / first.agg_reduce:.2f}x WORSE; "
               f"paper 1.69x)")
    record("fig03_lda_bic_scaling", table + summary)

    # Computation scales down substantially...
    assert last.agg_compute < first.agg_compute / 2.5
    # ...while reduction time grows with the cluster.
    assert last.agg_reduce > first.agg_reduce
