"""Compute/communication overlap benchmark: writes ``BENCH_overlap.json``.

Measures the end-to-end virtual time of ``split_aggregate`` on cells
where per-partition seqOp cost is deliberately staggered (later
partitions are costlier), comparing the phased ring — all partitions
barrier, then one blocking collective — against ``pipelined_ring``,
which streams each executor's finished aggregator into the ring in
fixed-size chunks while stragglers are still folding.

The acceptance gate, per ISSUE: on compute/wire-balanced cells (seqOp
compute within ~2x of the ring's reduce window) the pipelined collective
must cut end-to-end aggregation time by at least 25%, the cost-model
auto-tuner must pick ``pipelined_ring`` on those cells, and the exact
tier must stay byte-identical to the phased ring. Any miss exits
non-zero.

Usage::

    PYTHONPATH=src python benchmarks/overlap.py          # full sweep
    PYTHONPATH=src python benchmarks/overlap.py --smoke  # one cell (CI)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro import AggregationSpec
from repro.cluster import MB, ClusterConfig
from repro.obs import CollectiveChosen
from repro.service import SparkerSession
from repro.rdd.costing import Costed
from repro.serde import SizedPayload

# (nodes, partitions, aggregator MB, per-item seqOp seconds): sized so
# staggered compute and the ring's wire time are the same order.
CELLS = (
    (2, 8, 128, 0.09),
    (2, 8, 192, 0.13),
    (2, 8, 256, 0.18),
    (2, 6, 96, 0.08),
    (3, 12, 128, 0.08),
)
ITEMS_PER_PARTITION = 4
ELEMS = 64
PARALLELISM = 2
CHUNK_MB = 1.0  # stream granularity; saving saturates below ~2 MB here
REDUCTION_GATE = 0.25
BALANCE_WINDOW = (0.4, 2.5)  # compute/reduce ratio defining "balanced"


class Sample:
    """One training record: a payload plus its virtual seqOp cost."""

    __slots__ = ("payload", "seconds")

    def __init__(self, payload: SizedPayload, seconds: float):
        self.payload = payload
        self.seconds = seconds


def make_data(parts: int, nbytes: float, cost_scale: float) -> list:
    """Later items cost more, so partition finish times fan out."""
    rng = np.random.default_rng(1)
    n_items = parts * ITEMS_PER_PARTITION
    return [Sample(SizedPayload(rng.random(ELEMS), sim_bytes=nbytes),
                   cost_scale * (1.0 + i / n_items))
            for i in range(n_items)]


def run_cell(spec: AggregationSpec, nodes: int, parts: int, nbytes: float,
             cost_scale: float, listener=None) -> tuple:
    """One split_aggregate; returns (seconds, result bytes, phase dict)."""
    sc = SparkerSession(ClusterConfig.bic(num_nodes=nodes)).context()
    if listener is not None:
        sc.event_bus.subscribe(listener)
    rdd = sc.parallelize(make_data(parts, nbytes, cost_scale), parts).cache()
    rdd.count()
    began = sc.now
    result = rdd.split_aggregate(
        lambda: SizedPayload(np.zeros(ELEMS), sim_bytes=nbytes),
        seq_op=Costed(lambda a, x: a.merge_inplace(x.payload),
                      lambda a, x: x.seconds),
        split_op=lambda u, i, n: u.split(i, n),
        reduce_op=lambda a, b: a.merge(b),
        concat_op=SizedPayload.concat,
        spec=spec)
    phases = {"compute": sc.stopwatch.total("agg.compute"),
              "reduce": sc.stopwatch.total("agg.reduce")}
    return sc.now - began, result.data.tobytes(), phases


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="one cell only (CI gate)")
    args = parser.parse_args()
    cells_to_run = CELLS[:1] if args.smoke else CELLS

    ring_spec = AggregationSpec(collective="ring", parallelism=PARALLELISM)
    pipe_spec = AggregationSpec(collective="pipelined_ring",
                                parallelism=PARALLELISM,
                                chunk_bytes=CHUNK_MB * MB)
    # pin the candidate grid so the tuner compares algorithms on the
    # same parallelism the measured runs use
    auto_spec = AggregationSpec(collective="auto", parallelism=PARALLELISM,
                                parallelism_candidates=(PARALLELISM,),
                                chunk_bytes=CHUNK_MB * MB)

    cells = {}
    failures = []
    for nodes, parts, size_mb, cost_scale in cells_to_run:
        nbytes = size_mb * MB
        ring_t, ring_bytes, ring_phases = run_cell(
            ring_spec, nodes, parts, nbytes, cost_scale)
        pipe_t, pipe_bytes, _ = run_cell(
            pipe_spec, nodes, parts, nbytes, cost_scale)
        events = []
        run_cell(auto_spec, nodes, parts, nbytes, cost_scale,
                 listener=events.append)
        chosen = next(e for e in events if isinstance(e, CollectiveChosen))

        reduction = 1.0 - pipe_t / ring_t
        balance = (ring_phases["compute"] / ring_phases["reduce"]
                   if ring_phases["reduce"] > 0 else float("inf"))
        balanced = BALANCE_WINDOW[0] <= balance <= BALANCE_WINDOW[1]
        identical = ring_bytes == pipe_bytes
        auto_picked = chosen.algorithm == "pipelined_ring"
        ok = identical and (not balanced
                            or (reduction >= REDUCTION_GATE and auto_picked))

        cell_name = f"bic{nodes}_{size_mb}MB_c{cost_scale:g}"
        if not ok:
            failures.append(cell_name)
        cells[cell_name] = {
            "nodes": nodes,
            "partitions": parts,
            "aggregator_bytes": nbytes,
            "seq_cost_scale": cost_scale,
            "ring_seconds": ring_t,
            "pipelined_seconds": pipe_t,
            "reduction": reduction,
            "ring_phase_seconds": ring_phases,
            "compute_over_reduce": balance,
            "balanced": balanced,
            "bit_identical": identical,
            "auto_choice": f"{chosen.algorithm}/P{chosen.parallelism}",
            "auto_picked_pipelined": auto_picked,
        }
        status = "ok" if ok else "FAIL"
        print(f"{cell_name:22s} ring={ring_t:.3f}s pipe={pipe_t:.3f}s "
              f"(-{100.0 * reduction:.1f}%) balance={balance:.2f} "
              f"auto={chosen.algorithm}/P{chosen.parallelism} "
              f"identical={identical} {status}")

    report = {
        "benchmark": "overlap",
        "configuration": {
            "cluster": "bic",
            "cells": [list(c) for c in cells_to_run],
            "items_per_partition": ITEMS_PER_PARTITION,
            "parallelism": PARALLELISM,
            "chunk_mb": CHUNK_MB,
            "reduction_gate": REDUCTION_GATE,
            "balance_window": list(BALANCE_WINDOW),
            "smoke": args.smoke,
        },
        "cells": cells,
        "all_gates_passed": not failures,
        "notes": (
            "End-to-end split_aggregate virtual seconds with staggered "
            "per-partition seqOp costs. reduction = 1 - pipelined/ring; "
            "the gate requires >= 25% on balanced cells (compute/reduce "
            "within the balance window), the auto tuner choosing "
            "pipelined_ring there, and byte-identical results everywhere."
        ),
    }
    target = Path(__file__).resolve().parent.parent / "BENCH_overlap.json"
    if not args.smoke:
        target.write_text(json.dumps(report, indent=2) + "\n",
                          encoding="utf-8")
        print(f"\nwrote {target}")
    else:
        print(json.dumps(report, indent=2))
    if failures:
        print(f"FAILED: overlap gates missed in {failures}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
