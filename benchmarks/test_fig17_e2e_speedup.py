"""Figure 17: end-to-end Sparker speedup over Spark, all nine workloads.

Paper: geomean 1.60x on BIC and 1.81x on AWS; the largest speedups come
from the big-aggregator workloads (SVM-K peaks at 2.62x on BIC and 3.69x
on AWS; LDA-N, LR-K, SVM-K12 all above 2x on AWS).
"""

from conftest import run_once

from repro.bench import fig17_e2e_speedup, format_table, geomean


def test_fig17_e2e_speedup(benchmark, record):
    rows = run_once(benchmark, fig17_e2e_speedup,
                    clusters=("BIC", "AWS"), iterations=2)
    table = format_table(
        ["Cluster", "Workload", "Spark (s)", "Sparker (s)", "Speedup"],
        [(c, w, round(a, 2), round(b, 2), round(sp, 2))
         for c, w, a, b, sp in rows],
        title="Figure 17: end-to-end Sparker speedup over Spark")
    by_cluster = {}
    for cluster, workload, _a, _b, sp in rows:
        by_cluster.setdefault(cluster, {})[workload] = sp
    summary = "".join(
        f"\n{cluster} geomean: {geomean(sps.values()):.2f}x "
        f"(paper: {'1.60x' if cluster == 'BIC' else '1.81x'}), "
        f"max {max(sps.values()):.2f}x on {max(sps, key=sps.get)}"
        for cluster, sps in by_cluster.items())
    record("fig17_e2e_speedup", table + summary)

    for cluster, sps in by_cluster.items():
        # Sparker wins on every workload.
        assert all(sp > 1.0 for sp in sps.values()), (cluster, sps)
        # The big-aggregator workloads benefit most.
        assert max(sps, key=sps.get) in ("SVM-K", "LR-K", "SVM-K12",
                                         "LDA-N")
        assert geomean(sps.values()) > 1.3
    # kdd-family workloads land above 2x on AWS (paper §5.3.1).
    aws = by_cluster["AWS"]
    for name in ("LR-K", "SVM-K", "SVM-K12"):
        assert aws[name] > 2.0
