"""Resilience benchmark: writes ``BENCH_resilience.json``.

Two questions, one artifact:

1. **Resilient overlap** — how much of the pipelined ring's
   compute/communication overlap win survives injected chaos? Each
   scenario runs the same staggered-compute split aggregation twice
   under the identical fault plan — once with
   ``collective="pipelined_ring"`` (the fault-tolerant streamed path)
   and once with the phased ``"ring"`` recovery loop — and reports the
   win and the fraction of the fault-free overlap win retained. Every
   run must stay bit-identical to the fault-free result (the workload is
   integer-valued, so float addition is exact).

2. **Speculative execution** — with one executor straggling, how much
   straggler makespan does ``sc.speculation`` cut on a plain map job,
   while accumulators stay exactly-once and a disabled/armed-idle run
   stays perturbation-free?

Usage::

    PYTHONPATH=src python benchmarks/resilience.py          # full
    PYTHONPATH=src python benchmarks/resilience.py --smoke  # CI gate

``--smoke`` prints the report without writing the artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

import numpy as np

from repro import AggregationSpec
from repro.cluster import MB, ClusterConfig
from repro.faults import (
    AtRingHop,
    AtStageBoundary,
    ExecutorCrash,
    FaultController,
    FaultPlan,
    MessageDrop,
    RecoveryPolicy,
    Straggler,
)
from repro.obs import SpeculativeAttempt
from repro.rdd import SpeculationPolicy
from repro.service import SparkerSession
from repro.rdd.costing import Costed

NODES = 4
WIDTH = 256
NBYTES = 16 * MB
N_ITEMS = 32
N_PARTITIONS = 8
PARALLELISM = 4
SEQ_COST = 0.02  # staggers partition finish times: overlap matters
SEED = 2024

RECOVERY = RecoveryPolicy(recv_timeout=0.25, max_ring_attempts=3)

SPEC_ELEMENTS = 32
SPEC_PARTITIONS = 8
SPEC_COST = 0.05
SPEC_FACTOR = 8.0


# ---------------------------------------------------------------- part 1
def run_agg(collective: str, plan: FaultPlan | None) -> dict:
    from repro.serde import SizedPayload

    sc = SparkerSession(ClusterConfig.laptop(num_nodes=NODES)).context()
    controller = (FaultController(sc, plan, RECOVERY).arm()
                  if plan is not None else None)
    data = [SizedPayload(np.full(WIDTH, float(i)), sim_bytes=NBYTES)
            for i in range(N_ITEMS)]
    rdd = sc.parallelize(data, N_PARTITIONS)
    result = rdd.split_aggregate(
        lambda: SizedPayload(np.zeros(WIDTH), sim_bytes=NBYTES),
        Costed(lambda a, x: a.merge_inplace(x), SEQ_COST),
        lambda u, i, n: u.split(i, n),
        lambda a, b: a.merge(b),
        SizedPayload.concat,
        AggregationSpec(collective=collective, parallelism=PARALLELISM,
                        recovery=None if plan is not None else RECOVERY))
    return {
        "result": result.data.tobytes(),
        "virtual_seconds": sc.now,
        "actions": [a.action for a in controller.actions]
        if controller else [],
    }


def scenario_matrix() -> dict:
    probe = SparkerSession(ClusterConfig.laptop(num_nodes=NODES)).context()
    eids = [e.executor_id for e in probe.executors]
    return {
        "crash_before_ring": FaultPlan(faults=(ExecutorCrash(
            eids[1], AtStageBoundary(stage_kind="reduced_result",
                                     edge="completed")),), seed=SEED),
        "crash_mid_ring": FaultPlan(faults=(ExecutorCrash(
            eids[1], AtRingHop(1)),), seed=SEED),
        "message_drop": FaultPlan(faults=(MessageDrop(count=2, skip=3),),
                                  seed=SEED),
        "straggler": FaultPlan(faults=(Straggler(
            eids[2], factor=4.0, start=0.0),), seed=SEED),
    }


# ---------------------------------------------------------------- part 2
def run_map(speculate: bool, straggle: bool) -> dict:
    sc = SparkerSession(ClusterConfig.laptop(num_nodes=NODES)).context()
    if speculate:
        sc.speculation = SpeculationPolicy()
    events: list = []
    sc.event_bus.subscribe(events.append)
    if straggle:
        FaultController(sc, FaultPlan(faults=(Straggler(
            sc.executors[0].executor_id, factor=SPEC_FACTOR, start=0.0),),
            seed=SEED)).arm()
    acc = sc.accumulator(0, name="adds")

    def bump(x):
        acc.add(1)
        return x * 2

    result = (sc.parallelize(range(SPEC_ELEMENTS), SPEC_PARTITIONS)
              .map(Costed(bump, SPEC_COST)).collect())
    return {
        "result": result,
        "virtual_seconds": sc.now,
        "accumulator": acc.value,
        "clones": Counter(
            e.action for e in events if isinstance(e, SpeculativeAttempt)),
    }


def speculation_section() -> dict:
    plain = run_map(speculate=False, straggle=False)
    armed_idle = run_map(speculate=True, straggle=False)
    disabled = run_map(speculate=False, straggle=True)
    enabled = run_map(speculate=True, straggle=True)
    cut = (disabled["virtual_seconds"] - enabled["virtual_seconds"]) \
        / disabled["virtual_seconds"]
    return {
        "plain_seconds": plain["virtual_seconds"],
        "disabled_seconds": disabled["virtual_seconds"],
        "enabled_seconds": enabled["virtual_seconds"],
        "makespan_cut_ratio": cut,
        "zero_perturbation": (
            armed_idle["virtual_seconds"] == plain["virtual_seconds"]
            and armed_idle["result"] == plain["result"]
            and not armed_idle["clones"]),
        "exactly_once": (
            enabled["accumulator"] == SPEC_ELEMENTS
            and enabled["result"] == plain["result"]),
        "clone_events": dict(enabled["clones"]),
    }


# ------------------------------------------------------------------ main
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="print the report without writing the artifact")
    args = parser.parse_args()

    clean_pipe = run_agg("pipelined_ring", None)
    clean_ring = run_agg("ring", None)
    clean_win = clean_ring["virtual_seconds"] - clean_pipe["virtual_seconds"]

    report_scenarios = {}
    failures = []
    for name, plan in scenario_matrix().items():
        pipe = run_agg("pipelined_ring", plan)
        ring = run_agg("ring", plan)
        identical = (pipe["result"] == clean_pipe["result"]
                     and ring["result"] == clean_pipe["result"])
        if not identical:
            failures.append(name)
        win = ring["virtual_seconds"] - pipe["virtual_seconds"]
        report_scenarios[name] = {
            "pipelined_seconds": pipe["virtual_seconds"],
            "phased_seconds": ring["virtual_seconds"],
            "win_seconds": win,
            "overlap_retention": win / clean_win if clean_win > 0 else 0.0,
            "downgraded": "streamed_abort" in pipe["actions"],
            "recovery_actions": dict(Counter(pipe["actions"])),
            "result_bit_identical": identical,
        }
        print(f"{name:20s} pipelined {pipe['virtual_seconds']:8.4f}s  "
              f"phased {ring['virtual_seconds']:8.4f}s  "
              f"win {win:+8.4f}s  "
              f"{'ok' if identical else 'RESULT MISMATCH'}")

    speculation = speculation_section()
    print(f"{'speculation':20s} disabled "
          f"{speculation['disabled_seconds']:.4f}s  enabled "
          f"{speculation['enabled_seconds']:.4f}s  cut "
          f"{speculation['makespan_cut_ratio']:.1%}")
    if not speculation["zero_perturbation"]:
        failures.append("speculation_zero_perturbation")
    if not speculation["exactly_once"]:
        failures.append("speculation_exactly_once")

    report = {
        "benchmark": "resilience",
        "configuration": {
            "cluster": "laptop", "nodes": NODES,
            "aggregator_bytes": NBYTES, "items": N_ITEMS,
            "partitions": N_PARTITIONS, "parallelism": PARALLELISM,
            "seq_cost": SEQ_COST,
            "recv_timeout": RECOVERY.recv_timeout,
            "max_ring_attempts": RECOVERY.max_ring_attempts,
            "speculation_straggler_factor": SPEC_FACTOR,
            "seed": SEED,
            "smoke": args.smoke,
        },
        "clean": {
            "pipelined_seconds": clean_pipe["virtual_seconds"],
            "phased_seconds": clean_ring["virtual_seconds"],
            "overlap_win_seconds": clean_win,
        },
        "scenarios": report_scenarios,
        "speculation": speculation,
        "all_bit_identical": not any(
            n in report_scenarios for n in failures),
        "notes": (
            "Scenario wins compare the fault-tolerant streamed path "
            "against the phased recovery ring under the identical fault "
            "plan (virtual seconds). overlap_retention is the faulted "
            "win over the fault-free win: 1.0 means chaos cost the "
            "stream nothing, 0.0 means it degraded to phased timing. "
            "Crash scenarios abort the stream and replay acknowledged "
            "chunk columns through the ledger; the straggler scenario "
            "keeps the stream alive end to end. The speculation section "
            "is a plain map job with one straggling executor; "
            "makespan_cut_ratio is the fraction of wall (virtual) time "
            "the clone-and-race machinery removes."
        ),
    }
    target = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
    if not args.smoke:
        target.write_text(json.dumps(report, indent=2) + "\n",
                          encoding="utf-8")
        print(f"\nwrote {target}")
    else:
        print(json.dumps(report, indent=2))
    if failures:
        print(f"FAILED: {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
