"""Tracing-overhead benchmark: writes ``BENCH_obs_overhead.json``.

Runs one Figure-16 configuration (8 MB aggregators, 4 BIC nodes, split
aggregation) with observability detached, with a recording listener plus
NIC monitor attached, and with a full JSON-lines event log streaming to
disk — and compares *wall-clock* times. Virtual times must be identical
in all three modes (the zero-perturbation contract); the attached modes
should cost <10% wall-clock, detached ~0%.

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead.py
"""

from __future__ import annotations

import json
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import AggregationSpec
from repro.cluster import MB, ClusterConfig
from repro.obs import EventLogWriter, NicMonitor, RecordingListener
from repro.rdd import SparkerContext
from repro.serde import SizedPayload

REPEATS = 9
NBYTES = 8 * MB
NODES = 4


def run_once(mode: str) -> dict:
    sc = SparkerContext(ClusterConfig.bic(num_nodes=NODES))
    recorder = None
    monitor = None
    writer = None
    log_path = None
    if mode in ("recorder", "event_log"):
        monitor = NicMonitor(sc.cluster, sc.event_bus, interval=0.01)
        if mode == "recorder":
            recorder = RecordingListener()
            sc.event_bus.subscribe(recorder)
        else:
            log_path = Path(tempfile.mkstemp(suffix=".jsonl")[1])
            writer = EventLogWriter(log_path)
            sc.event_bus.subscribe(writer)

    n_parts = sc.cluster.total_cores
    data = [SizedPayload(np.ones(512), sim_bytes=NBYTES)
            for _ in range(n_parts)]
    rdd = sc.parallelize(data, n_parts).cache()
    rdd.count()
    zero = lambda: SizedPayload(np.zeros(512), sim_bytes=NBYTES)  # noqa: E731

    began = time.perf_counter()
    rdd.split_aggregate(zero, lambda a, x: a.merge_inplace(x),
                        lambda u, i, n: u.split(i, n),
                        lambda a, b: a.merge(b),
                        SizedPayload.concat, AggregationSpec(parallelism=4))
    wall = time.perf_counter() - began

    if monitor is not None:
        monitor.stop()
    events = len(recorder.events) if recorder else (
        writer.written if writer else 0)
    if writer is not None:
        writer.close()
        log_path.unlink()
    return {"wall_seconds": wall, "virtual_seconds": sc.now,
            "events": events}


def main() -> None:
    modes = ("detached", "recorder", "event_log")
    for mode in modes:  # warm-up: caches, allocator, first-touch imports
        run_once(mode)
    runs = {mode: [] for mode in modes}
    for _ in range(REPEATS):  # interleave so system noise hits all modes
        for mode in modes:
            runs[mode].append(run_once(mode))

    virtual = {mode: {r["virtual_seconds"] for r in results}
               for mode, results in runs.items()}
    assert all(len(v) == 1 for v in virtual.values()), virtual
    assert len(set().union(*virtual.values())) == 1, virtual

    def best(mode):
        return min(r["wall_seconds"] for r in runs[mode])

    report = {
        "benchmark": "obs_overhead",
        "configuration": {
            "figure": "fig16", "cluster": "BIC", "nodes": NODES,
            "aggregator_bytes": NBYTES, "method": "split",
            "repeats": REPEATS,
        },
        "virtual_seconds": next(iter(virtual["detached"])),
        "modes": {
            mode: {
                "wall_seconds_best": best(mode),
                "wall_seconds_median": statistics.median(
                    r["wall_seconds"] for r in runs[mode]),
                "events": runs[mode][0]["events"],
            }
            for mode in modes
        },
        "overhead_vs_detached": {
            mode: best(mode) / best("detached") - 1.0
            for mode in ("recorder", "event_log")
        },
        "per_event_overhead_seconds": {
            mode: ((best(mode) - best("detached"))
                   / max(runs[mode][0]["events"], 1))
            for mode in ("recorder", "event_log")
        },
        "virtual_time_identical": True,
        "notes": (
            "split aggregation with parallelism=4 is the engine's most "
            "message-dense path (~90% of events are per-message/per-hop "
            "records at a few microseconds each); task/stage/phase-level "
            "tracing alone is well under the 10% target. Detached runs "
            "pay only a per-site bool check (~0%): the tier-1 suite's "
            "exact virtual-time assertions pass unchanged with the "
            "instrumentation compiled in."
        ),
    }
    target = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"
    target.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {target}")


if __name__ == "__main__":
    main()
