"""Tracing-overhead benchmark: writes ``BENCH_obs_overhead.json``.

Runs one Figure-16 configuration (8 MB aggregators, 4 BIC nodes, split
aggregation) with observability detached, with a recording listener plus
NIC monitor attached, with the buffered JSON-lines event log, and with
the log forced to serialize-per-event (``buffer_events=1``, the
pre-buffering behaviour) — and compares *wall-clock* times of the
aggregation window. Virtual times must be identical in all modes (the
zero-perturbation contract). The buffered writer defers serialization
off the emit path, so its measured overhead should track the in-memory
recorder's (within a few points of that floor, vs ~3x the floor for
serialize-per-event); the deferred cost is reported separately as
``flush_seconds``.

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead.py
    PYTHONPATH=src python benchmarks/obs_overhead.py --smoke --output /tmp/x.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import AggregationSpec
from repro.cluster import MB, ClusterConfig
from repro.obs import EventLogWriter, NicMonitor, RecordingListener
from repro.service import SparkerSession
from repro.serde import SizedPayload

REPEATS = 15
NBYTES = 8 * MB
NODES = 4

MODES = ("detached", "recorder", "event_log", "event_log_sync")


def run_once(mode: str, nbytes: float, nodes: int) -> dict:
    sc = SparkerSession(ClusterConfig.bic(num_nodes=nodes)).context()
    recorder = None
    monitor = None
    writer = None
    log_path = None
    if mode != "detached":
        monitor = NicMonitor(sc.cluster, sc.event_bus, interval=0.01)
        if mode == "recorder":
            recorder = RecordingListener()
            sc.event_bus.subscribe(recorder)
        else:
            log_path = Path(tempfile.mkstemp(suffix=".jsonl")[1])
            writer = EventLogWriter(
                log_path,
                buffer_events=1 if mode == "event_log_sync" else 8192)
            sc.event_bus.subscribe(writer)

    n_parts = sc.cluster.total_cores
    data = [SizedPayload(np.ones(512), sim_bytes=nbytes)
            for _ in range(n_parts)]
    rdd = sc.parallelize(data, n_parts).cache()
    rdd.count()
    zero = lambda: SizedPayload(np.zeros(512), sim_bytes=nbytes)  # noqa: E731

    began = time.perf_counter()
    rdd.split_aggregate(zero, lambda a, x: a.merge_inplace(x),
                        lambda u, i, n: u.split(i, n),
                        lambda a, b: a.merge(b),
                        SizedPayload.concat, AggregationSpec(parallelism=4))
    wall = time.perf_counter() - began

    if monitor is not None:
        monitor.stop()
    events = len(recorder.events) if recorder else (
        writer.written if writer else 0)
    flush = 0.0
    if writer is not None:
        began = time.perf_counter()
        writer.close()
        flush = time.perf_counter() - began
        log_path.unlink()
    return {"wall_seconds": wall, "flush_seconds": flush,
            "virtual_seconds": sc.now, "events": events}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI (3 repeats, "
                             "2 nodes, 2 MB aggregators)")
    parser.add_argument("--output", default=None,
                        help="report path (default: repo root "
                             "BENCH_obs_overhead.json)")
    args = parser.parse_args()
    repeats = 3 if args.smoke else REPEATS
    nbytes = (2 * MB) if args.smoke else NBYTES
    nodes = 2 if args.smoke else NODES

    for mode in MODES:  # warm-up: caches, allocator, first-touch imports
        run_once(mode, nbytes, nodes)
    runs = {mode: [] for mode in MODES}
    for _ in range(repeats):  # interleave so system noise hits all modes
        for mode in MODES:
            runs[mode].append(run_once(mode, nbytes, nodes))

    virtual = {mode: {r["virtual_seconds"] for r in results}
               for mode, results in runs.items()}
    assert all(len(v) == 1 for v in virtual.values()), virtual
    assert len(set().union(*virtual.values())) == 1, virtual

    def best(mode):
        return min(r["wall_seconds"] for r in runs[mode])

    def paired_overhead(mode):
        # Modes are interleaved within each round, so the per-round
        # ratio cancels machine-load drift; the median ratio is robust
        # to the occasional slow round that best-of-N is not.
        ratios = [runs[mode][i]["wall_seconds"]
                  / runs["detached"][i]["wall_seconds"]
                  for i in range(repeats)]
        return statistics.median(ratios) - 1.0

    report = {
        "benchmark": "obs_overhead",
        "configuration": {
            "figure": "fig16", "cluster": "BIC", "nodes": nodes,
            "aggregator_bytes": nbytes, "method": "split",
            "repeats": repeats, "smoke": args.smoke,
        },
        "virtual_seconds": next(iter(virtual["detached"])),
        "modes": {
            mode: {
                "wall_seconds_best": best(mode),
                "wall_seconds_median": statistics.median(
                    r["wall_seconds"] for r in runs[mode]),
                "flush_seconds_best": min(
                    r["flush_seconds"] for r in runs[mode]),
                "events": runs[mode][0]["events"],
            }
            for mode in MODES
        },
        "overhead_vs_detached": {
            mode: paired_overhead(mode)
            for mode in MODES if mode != "detached"
        },
        "per_event_overhead_seconds": {
            mode: ((best(mode) - best("detached"))
                   / max(runs[mode][0]["events"], 1))
            for mode in MODES if mode != "detached"
        },
        "virtual_time_identical": True,
        "notes": (
            "split aggregation with parallelism=4 is the engine's most "
            "message-dense path (~90% of events are per-message/per-hop "
            "records at a few microseconds each). event_log buffers "
            "events as objects and serializes in 8192-event batches, so "
            "its emit-path overhead tracks the in-memory recorder's; "
            "event_log_sync is the serialize-per-event baseline, and "
            "flush_seconds is the deferred batch-serialization cost paid "
            "at close. Detached runs pay only a per-site bool check "
            "(~0%): the tier-1 suite's exact virtual-time assertions "
            "pass unchanged with the instrumentation compiled in."
        ),
    }
    target = (Path(args.output) if args.output else
              Path(__file__).resolve().parent.parent
              / "BENCH_obs_overhead.json")
    target.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {target}")


if __name__ == "__main__":
    main()
