"""Figure 16: RDD aggregation — Tree vs Tree+IMM vs Split.

Paper (BIC, 1 -> 8 nodes): at 1KB all three are similar; at 8MB split
starts to win (1.91x over tree); at 256MB split scales nearly flat
(8-node time only 1.12x the 1-node time) and beats tree by 6.48x, with
IMM alone contributing 1.46x.
"""

from conftest import run_once

from repro.bench import fig16_aggregation_scaling, format_table
from repro.cluster import KB, MB


def test_fig16_aggregation_scaling(benchmark, record):
    rows = run_once(benchmark, fig16_aggregation_scaling,
                    node_counts=(1, 2, 4, 8),
                    sizes=(1 * KB, 8 * MB, 256 * MB))
    t = {(b, n, m): sec for b, n, m, sec in rows}
    sizes = sorted({b for b, _n, _m, _s in rows})
    nodes = sorted({n for _b, n, _m, _s in rows})
    lines = []
    for b in sizes:
        label = f"{int(b / KB)}KB" if b < MB else f"{int(b / MB)}MB"
        for n in nodes:
            lines.append((label, n, round(t[(b, n, "tree")], 3),
                          round(t[(b, n, "tree_imm")], 3),
                          round(t[(b, n, "split")], 3)))
    table = format_table(
        ["Message", "Nodes", "Tree (s)", "Tree+IMM (s)", "Split (s)"],
        lines,
        title="Figure 16: aggregation scalability (BIC, one array/core)")
    big, mid, small = 256 * MB, 8 * MB, 1 * KB
    summary = (
        f"\n256MB @ 8 nodes: split {t[(big, 8, 'tree')] / t[(big, 8, 'split')]:.2f}x"
        f" over tree (paper 6.48x); IMM "
        f"{t[(big, 8, 'tree')] / t[(big, 8, 'tree_imm')]:.2f}x (paper 1.46x)"
        f"\nsplit 8-node/1-node at 256MB: "
        f"{t[(big, 8, 'split')] / t[(big, 1, 'split')]:.2f}x (paper 1.12x)"
        f"\n8MB @ 8 nodes: split {t[(mid, 8, 'tree')] / t[(mid, 8, 'split')]:.2f}x"
        f" over tree (paper 1.91x)")
    record("fig16_aggregation_scaling", table + summary)

    # 1KB: all methods within a small constant of each other.
    small_times = [t[(small, 8, m)] for m in ("tree", "tree_imm", "split")]
    assert max(small_times) / min(small_times) < 3
    # 8MB: split has pulled ahead of tree.
    assert t[(mid, 8, "tree")] / t[(mid, 8, "split")] > 1.5
    # 256MB: split wins big and IMM alone helps but less.
    big_ratio = t[(big, 8, "tree")] / t[(big, 8, "split")]
    imm_ratio = t[(big, 8, "tree")] / t[(big, 8, "tree_imm")]
    assert big_ratio > 4
    assert 1.2 < imm_ratio < big_ratio
    # Split scales nearly flat with nodes; tree does not.
    assert t[(big, 8, "split")] / t[(big, 1, "split")] < 1.5
    assert t[(big, 8, "tree")] / t[(big, 1, "tree")] > 1.8
    # Tree time grows monotonically with nodes at 256MB.
    tree_curve = [t[(big, n, "tree")] for n in nodes]
    assert all(a < b for a, b in zip(tree_curve, tree_curve[1:]))
