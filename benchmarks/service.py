"""Multi-tenant job-service benchmark: writes ``BENCH_service.json``.

Three phases over one seeded open-loop traffic mix (8 tenants, 3 FAIR
pools, mixed LR/SVM jobs with varied ``AggregationSpec``s):

1. **Concurrent** — the full schedule through one long-lived driver
   (:class:`repro.service.JobServer`), stages from different jobs
   interleaving on the shared executor pool. Reports p50/p99 job latency
   and makespan.
2. **Serialized FIFO** — the *same* schedule, one job at a time in
   arrival order on an identical service (jobs still arrive open-loop;
   the queue drains strictly FIFO). The concurrent/serialized makespan
   ratio is the throughput speedup of multi-tenancy.
3. **Isolated identity** — each distinct job signature re-run alone on a
   fresh context via the classic synchronous path; every concurrent
   job's final weights must be byte-identical to its isolated run
   (ordered deferred-merge IMM makes cross-job interleaving
   unobservable).

A separate **burst fairness** phase saturates all three pools at once
and samples the FAIR arbiter: over the window where every pool has
demand, per-pool task-seconds divided by pool weight must agree within
2x (weighted max/min share <= 2.0).

Usage::

    PYTHONPATH=src python benchmarks/service.py          # full, writes JSON
    PYTHONPATH=src python benchmarks/service.py --smoke  # CI gate, no write
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import AggregationSpec
from repro.cluster import ClusterConfig
from repro.service import (
    PoolConfig,
    SparkerSession,
    TenantProfile,
    arrival_schedule,
    run_open_loop,
    submit_arrival,
)

NODES = 4          # laptop(4): 4 nodes x 2 executors x 2 cores = 16 slots
PARTITIONS = 4     # each job uses 4 of 16 slots -> concurrency pays
ITERATIONS = 2
SEED = 2026

POOLS = {
    "gold": PoolConfig(weight=3.0),
    "silver": PoolConfig(weight=2.0),
    "bronze": PoolConfig(weight=1.0),
}

SPLIT_SPECS = (AggregationSpec(collective="ring", parallelism=2),
               AggregationSpec(collective="hd", parallelism=2))


def tenant_mix(jobs_per_tenant: int) -> List[TenantProfile]:
    """Eight tenants over three pools, mixed models/specs, two bursty."""
    common = dict(jobs=jobs_per_tenant, iterations=ITERATIONS,
                  partitions=PARTITIONS)
    return [
        TenantProfile("ads-train", pool="gold", workloads=("LR-A",),
                      aggregation="split", specs=SPLIT_SPECS,
                      mean_interarrival=30.0, **common),
        TenantProfile("feed-rank", pool="gold", workloads=("SVM-A",),
                      aggregation="tree", mean_interarrival=30.0, **common),
        TenantProfile("spam-filter", pool="silver", workloads=("LR-A", "SVM-A"),
                      aggregation="tree", mean_interarrival=40.0, **common),
        TenantProfile("ctr-sweep", pool="silver", workloads=("LR-A",),
                      aggregation="split", specs=SPLIT_SPECS,
                      mean_interarrival=90.0, burst=3, **common),
        TenantProfile("churn-model", pool="silver", workloads=("SVM-A",),
                      aggregation="tree_imm", mean_interarrival=40.0, **common),
        TenantProfile("analyst-1", pool="bronze", workloads=("LR-A", "SVM-A"),
                      aggregation="tree", mean_interarrival=50.0, **common),
        TenantProfile("analyst-2", pool="bronze", workloads=("SVM-A",),
                      aggregation="split", specs=SPLIT_SPECS,
                      mean_interarrival=120.0, burst=4, **common),
        TenantProfile("intern", pool="bronze", workloads=("LR-A",),
                      aggregation="tree", mean_interarrival=50.0, **common),
    ]


def make_session() -> SparkerSession:
    return SparkerSession(ClusterConfig.laptop(num_nodes=NODES),
                          pools=dict(POOLS))


# ----------------------------------------------------------------- phases
def concurrent_phase(tenants) -> Tuple[dict, Dict[Tuple, np.ndarray]]:
    """Run the schedule concurrently; report + weights by signature."""
    with make_session() as session:
        result = run_open_loop(session, tenants, seed=SEED)
        weights: Dict[Tuple, np.ndarray] = {}
        mismatched_dupes = []
        for arrival, handle in result.submissions:
            if handle is None:
                continue
            w = handle.result().final_weights
            key = arrival.signature
            if key in weights:
                if not np.array_equal(weights[key], w):
                    mismatched_dupes.append(key)
            else:
                weights[key] = w
        report = {
            "jobs": len(result.handles),
            "tenants": len({a.tenant for a, _ in result.submissions}),
            "statuses": result.by_status(),
            "makespan": result.makespan,
            "p50": result.percentile(0.50),
            "p99": result.percentile(0.99),
            "rejected": len(result.rejections),
            "duplicate_signatures_identical": not mismatched_dupes,
        }
    return report, weights


def serialized_phase(tenants) -> dict:
    """Same schedule, strictly one job at a time, in arrival order."""
    schedule = arrival_schedule(tenants, seed=SEED)
    with make_session() as session:
        env = session.server.sc.env
        began = env.now
        latencies = []
        for arrival in schedule:
            wait = began + arrival.time - env.now
            if wait > 0:
                # idle until the job actually arrives (open-loop arrivals,
                # FIFO single-slot service)
                env.run(until=env.timeout(wait))
            handle = submit_arrival(session, arrival)
            handle.result()
            latencies.append(env.now - (began + arrival.time))
        latencies.sort()
        return {
            "jobs": len(schedule),
            "makespan": env.now - began,
            "p50": latencies[len(latencies) // 2],
            "p99": latencies[min(len(latencies) - 1,
                                 int(0.99 * len(latencies)))],
        }


def identity_phase(tenants, concurrent_weights: Dict[Tuple, np.ndarray]) -> dict:
    """Re-run each distinct signature alone; weights must match exactly."""
    from repro.bench.workloads import run_workload

    schedule = arrival_schedule(tenants, seed=SEED)
    signatures: Dict[Tuple, object] = {}
    for arrival in schedule:
        signatures.setdefault(arrival.signature, arrival)
    mismatches = []
    for key, arrival in signatures.items():
        isolated = run_workload(
            arrival.workload, ClusterConfig.laptop(num_nodes=NODES),
            aggregation=arrival.aggregation, iterations=arrival.iterations,
            spec=arrival.spec, partitions=arrival.partitions)
        if key in concurrent_weights and not np.array_equal(
                concurrent_weights[key], isolated.final_weights):
            mismatches.append(list(key))
    return {
        "distinct_signatures": len(signatures),
        "compared": len(concurrent_weights),
        "mismatches": mismatches,
        "all_match": not mismatches,
    }


def fairness_phase(jobs_per_pool: int) -> dict:
    """Burst all pools at t=0; weighted shares over the saturated window."""
    with make_session() as session:
        server = session.server
        env = server.sc.env
        handles: Dict[str, list] = {pool: [] for pool in POOLS}
        for pool in POOLS:
            for i in range(jobs_per_pool):
                handles[pool].append(session.submit(
                    "LR-A", pool=pool, tenant=f"burst-{pool}",
                    iterations=ITERATIONS, partitions=PARTITIONS))
        samples: List[Tuple[float, dict]] = []

        def monitor():
            while any(not h.done() for hs in handles.values() for h in hs):
                yield env.timeout(2.0)
                samples.append((env.now, server.sample_pools()))

        env.process(monitor(), name="fairness:monitor")
        server.drain()
        # the window where every pool still has unfinished jobs: weighted
        # FAIR sharing only applies while demand is saturated
        pool_done = {pool: max(h.latency for h in hs)
                     for pool, hs in handles.items()}
        window_end = min(pool_done.values())
        in_window = [s for t, s in samples if t <= window_end]
        snapshot = in_window[-1] if in_window else samples[-1][1]
        shares = {pool: snapshot[pool]["task_seconds"] / POOLS[pool].weight
                  for pool in POOLS}
        ratio = max(shares.values()) / min(shares.values())
        return {
            "jobs_per_pool": jobs_per_pool,
            "window_end": window_end,
            "task_seconds": {pool: snapshot[pool]["task_seconds"]
                             for pool in POOLS},
            "weighted_shares": shares,
            "weighted_max_min_ratio": ratio,
        }


# -------------------------------------------------------------------- CLI
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small schedule, no artifact write")
    parser.add_argument("--out", type=Path, default=None,
                        help="artifact path override")
    args = parser.parse_args(argv)

    jobs_per_tenant = 3 if args.smoke else 13      # 8 tenants -> 24 / 104
    burst_jobs = 4 if args.smoke else 6
    tenants = tenant_mix(jobs_per_tenant)
    t0 = time.perf_counter()

    concurrent, weights = concurrent_phase(tenants)
    print(f"concurrent: {concurrent['jobs']} jobs, "
          f"makespan {concurrent['makespan']:.1f}s virtual, "
          f"p50 {concurrent['p50']:.1f}s p99 {concurrent['p99']:.1f}s")

    serialized = serialized_phase(tenants)
    speedup = serialized["makespan"] / concurrent["makespan"]
    print(f"serialized FIFO: makespan {serialized['makespan']:.1f}s virtual "
          f"-> concurrent speedup {speedup:.2f}x")

    identity = identity_phase(tenants, weights)
    print(f"identity: {identity['compared']} signatures vs isolated runs, "
          f"all_match={identity['all_match']}")

    fairness = fairness_phase(burst_jobs)
    print(f"fairness: weighted max/min share ratio "
          f"{fairness['weighted_max_min_ratio']:.2f} "
          f"(shares {fairness['weighted_shares']})")

    acceptance = {
        "scale_ok": (concurrent["jobs"] >= (20 if args.smoke else 100)
                     and concurrent["tenants"] >= 8),
        "throughput_ok": speedup >= 1.5,
        "fairness_ok": fairness["weighted_max_min_ratio"] <= 2.0,
        "all_succeeded":
            concurrent["statuses"].get("succeeded", 0) == concurrent["jobs"],
    }
    report = {
        "benchmark": "service",
        "configuration": {
            "cluster": "laptop", "nodes": NODES,
            "partitions": PARTITIONS, "iterations": ITERATIONS,
            "tenants": len(tenants), "jobs_per_tenant": jobs_per_tenant,
            "pools": {name: config.weight
                      for name, config in POOLS.items()},
            "seed": SEED, "smoke": args.smoke,
        },
        "throughput": {
            "concurrent_makespan": concurrent["makespan"],
            "serialized_makespan": serialized["makespan"],
            "speedup_vs_fifo": speedup,
            "jobs_per_1000s": 1000.0 * concurrent["jobs"]
                / concurrent["makespan"],
        },
        "latency": {"p50": concurrent["p50"], "p99": concurrent["p99"],
                    "fifo_p50": serialized["p50"],
                    "fifo_p99": serialized["p99"]},
        "fairness": fairness,
        "identity": identity,
        "concurrent": concurrent,
        "acceptance": acceptance,
        "wall_seconds": time.perf_counter() - t0,
        "notes": (
            "Virtual-time makespans/latencies of the same seeded open-loop "
            "schedule run concurrently vs strictly-FIFO through one "
            "long-lived driver. Identity compares every concurrent job's "
            "final weights byte-for-byte against the same job run alone on "
            "a fresh context (classic run_workload path). Fairness bursts "
            "all pools at once and compares task-seconds/weight over the "
            "window where every pool has demand."
        ),
    }

    target = args.out or (Path(__file__).resolve().parent.parent
                          / "BENCH_service.json")
    if not args.smoke:
        target.write_text(json.dumps(report, indent=2) + "\n",
                          encoding="utf-8")
        print(f"\nwrote {target}")
    else:
        print(json.dumps(report, indent=2))
    failed = [name for name, ok in acceptance.items() if not ok]
    if failed or not identity["all_match"]:
        print(f"FAILED: {failed or 'identity mismatch'}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
