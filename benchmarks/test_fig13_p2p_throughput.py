"""Figure 13: p2p throughput vs message size and channel parallelism.

Paper (BIC): MPI peaks at 1185.43 MB/s; the scalable communicator needs
multiple channels to fill the NIC and reaches 1151.80 MB/s (97.1% of line
rate) with 4; bandwidth degrades slightly for very large messages (JVM GC).
"""

from conftest import run_once

from repro.bench import fig13_p2p_throughput, format_table
from repro.cluster import KB, MB


def test_fig13_p2p_throughput(benchmark, record):
    rows = run_once(benchmark, fig13_p2p_throughput)
    table = format_table(
        ["Message", "MPI (MB/s)", "SC-1", "SC-2", "SC-4"],
        [(f"{int(nbytes / KB)}KB" if nbytes < MB
          else f"{int(nbytes / MB)}MB",
          round(cell["MPI"] / MB, 1), round(cell["SC-1"] / MB, 1),
          round(cell["SC-2"] / MB, 1), round(cell["SC-4"] / MB, 1))
         for nbytes, cell in rows],
        title="Figure 13: point-to-point throughput (BIC)")
    big = dict(rows)[256 * MB]
    summary = (f"\nat 256MB: SC-4 reaches "
               f"{big['SC-4'] / big['MPI'] * 100:.1f}% of MPI line rate "
               f"(paper: 97.1%)")
    record("fig13_p2p_throughput", table + summary)

    # Large-message shape: MPI ~ line rate; SC needs parallel channels.
    assert big["MPI"] / MB > 1100
    assert big["SC-1"] < big["SC-2"] < big["SC-4"] <= big["MPI"]
    assert 0.90 < big["SC-4"] / big["MPI"] < 1.0
    # GC drag: SC-4 bandwidth dips from mid-size to 256MB.
    mid = dict(rows)[8 * MB]
    assert big["SC-4"] < mid["SC-4"]
    # Small messages are latency-bound: far below line rate everywhere.
    small = dict(rows)[1 * KB]
    assert small["SC-1"] / MB < 20
