"""Figure 18: LDA-N strong scaling on AWS, Spark vs Sparker, decomposed.

Paper: at 8 cores reduction is 4.19x faster under Sparker (26.36s vs
6.29s); at 960 cores it is 7.22x faster (111.26s vs 15.41s) — the
advantage grows with scale. At 960 cores IMM also makes Sparker's
computation part faster (58.39s vs 40.49s), and the driver becomes the
next bottleneck (§6).
"""

from conftest import run_once

from repro.bench import fig18_sparker_scaling, format_table


def test_fig18_sparker_scaling(benchmark, record):
    rows = run_once(benchmark, fig18_sparker_scaling,
                    core_counts=(8, 96, 192, 480, 960), iterations=2)
    lines = []
    for cores, spark, sparker in rows:
        for label, result in (("Spark", spark), ("Sparker", sparker)):
            b = result.breakdown
            lines.append((cores, label, round(b.agg_compute, 2),
                          round(b.agg_reduce, 2), round(b.driver, 2),
                          round(b.non_agg, 2), round(result.end_to_end, 2)))
    table = format_table(
        ["Cores", "Engine", "Agg-compute", "Agg-reduce", "Driver",
         "Non-agg", "Total"],
        lines,
        title="Figure 18: LDA-N on AWS, Spark (tree) vs Sparker (split)")

    first_cores, first_spark, first_sparker = rows[0]
    last_cores, last_spark, last_sparker = rows[-1]
    first_ratio = (first_spark.breakdown.agg_reduce
                   / first_sparker.breakdown.agg_reduce)
    last_ratio = (last_spark.breakdown.agg_reduce
                  / last_sparker.breakdown.agg_reduce)
    summary = (f"\nreduction speedup at {first_cores} cores: "
               f"{first_ratio:.2f}x (paper 4.19x)"
               f"\nreduction speedup at {last_cores} cores: "
               f"{last_ratio:.2f}x (paper 7.22x)")
    record("fig18_sparker_scaling", table + summary)

    # Sparker's reduction is faster at every scale...
    for _cores, spark, sparker in rows:
        assert sparker.breakdown.agg_reduce < spark.breakdown.agg_reduce
    # ...and its advantage grows with the cluster.
    assert last_ratio > first_ratio
    # At the largest scale the driver is a visible share of Sparker's time
    # (the paper's §6 "new bottleneck" observation): a share that was
    # negligible at 8 cores grows by an order of magnitude.
    sparker_big = last_sparker.breakdown
    sparker_small = first_sparker.breakdown
    big_share = sparker_big.driver / sparker_big.total
    small_share = sparker_small.driver / sparker_small.total
    assert big_share > 0.08
    assert big_share > 10 * small_share
