"""Figure 1: MLlib 8-node speedups over 1-node on BIC (the problem).

Paper: all nine workloads fall far from the perfect speedup of 8; best is
LDA-N at 2.49x, worst LR-K at 0.73x (adding machines slows it down);
average 1.25x.
"""

from conftest import run_once

from repro.bench import fig1_mllib_speedup, format_table, geomean


def test_fig01_mllib_speedup(benchmark, record):
    rows = run_once(benchmark, fig1_mllib_speedup, iterations=2)
    table = format_table(
        ["Workload", "1-node (s)", "8-node (s)", "Speedup"],
        [(n, round(t1, 2), round(t8, 2), round(sp, 2))
         for n, t1, t8, sp in rows],
        title="Figure 1: MLlib 8-node speedup over 1-node (BIC, "
              "treeAggregate)")
    speedups = {name: sp for name, _t1, _t8, sp in rows}
    summary = (f"\ngeomean speedup: {geomean(speedups.values()):.2f} "
               f"(paper: 1.25, range 0.73-2.49)")
    record("fig01_mllib_speedup", table + summary)

    # Shape assertions (paper's qualitative findings):
    # 1. Nothing approaches the perfect speedup of 8.
    assert max(speedups.values()) < 8 / 1.5
    # 2. At least one workload gets *slower* with more machines.
    assert min(speedups.values()) < 1.0
    # 3. The kdd-family (huge aggregators) scales worst.
    assert min(speedups, key=speedups.get) in ("LR-K", "SVM-K", "SVM-K12")
    # 4. Overall scaling is poor: geomean far below 8.
    assert geomean(speedups.values()) < 2.5
