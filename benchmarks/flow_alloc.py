"""Allocator micro-benchmark: writes ``BENCH_flow_alloc.json``.

Measures the max-min fair flow allocator *in isolation* — no RDDs, no ML,
no serde — by churning a steady population of concurrent flows through a
:class:`~repro.cluster.flows.FlowNetwork` and counting kernel events per
wall second. Every event in the run is allocator-driven (flow arrivals,
completion timers, reallocation rounds), so the metric moves only when
the allocator or the event calendar does.

Each concurrency level keeps exactly ``flows`` flows in the air: every
flow crosses its own uplink plus one of ``max(1, flows // 512)`` shared
bottleneck sinks, so each level is one contention component of ``flows``
members — the 10- and 100-flow levels stay on
the scalar progressive-filling path, the 1000-flow level crosses the
``_VEC_MIN`` threshold and exercises the vectorized bulk-freeze solve.
Flow sizes
are seeded per driver, so every run schedules an identical event
sequence and the numbers are comparable run to run.

Usage::

    PYTHONPATH=src python benchmarks/flow_alloc.py           # full run
    PYTHONPATH=src python benchmarks/flow_alloc.py --smoke   # CI gate

``--smoke`` runs reduced churn and exits non-zero when any level's
events/sec falls below 80% of the committed baseline's smoke reference
(the >20%-regression CI rule).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.cluster.flows import FlowNetwork, Link
from repro.sim import Environment

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_flow_alloc.json"

#: concurrent-flow population per level
LEVELS = (10, 100, 1000)

#: flow completions per driver (full run / smoke run)
FULL_ROUNDS = {10: 400, 100: 60, 1000: 8}
SMOKE_ROUNDS = {10: 120, 100: 20, 1000: 3}

#: tolerated events/sec regression against the committed baseline
REGRESSION_SLACK = 0.20

#: per-link capacity (bytes/s) and the flow-size band (bytes)
LINK_CAPACITY = 1e9
FLOW_BYTES = (2e7, 2e8)


def run_level(flows: int, rounds: int, seed: int = 0) -> dict:
    """Churn ``flows`` concurrent flows for ``rounds`` completions each."""
    env = Environment()
    net = FlowNetwork(env)
    sinks = [Link(LINK_CAPACITY, f"sink{j}")
             for j in range(max(1, flows // 512))]
    uplinks = [Link(LINK_CAPACITY, f"up{i}") for i in range(flows)]

    def driver(i: int):
        rng = random.Random((seed << 20) ^ i)
        links = [uplinks[i], sinks[i % len(sinks)]]
        for _ in range(rounds):
            nbytes = rng.uniform(*FLOW_BYTES)
            yield net.flow(nbytes, links=links)

    for i in range(flows):
        env.process(driver(i))
    began = time.perf_counter()
    env.run()
    wall = time.perf_counter() - began
    events = env.events_scheduled
    return {
        "flows": flows,
        "completions": flows * rounds,
        "sim_seconds": env.now,
        "wall_seconds": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


def run_levels(rounds_by_level: dict, seed: int = 0) -> dict:
    results = {}
    for flows in LEVELS:
        row = run_level(flows, rounds_by_level[flows], seed=seed)
        results[str(flows)] = row
        print(f"flows={flows:5d}: {row['events']:8d} events in "
              f"{row['wall_seconds']:.2f}s wall -> "
              f"{row['events_per_sec']:,.0f} events/s "
              f"({row['sim_seconds']:.1f} sim-s)")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Allocator-only throughput benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced churn + CI gate against the committed"
                             " baseline; writes nothing")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="output path for the full run's JSON")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_OUT,
                        help="committed baseline the smoke gate compares to")
    args = parser.parse_args(argv)

    if args.smoke:
        levels = run_levels(SMOKE_ROUNDS)
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, ValueError):
            print(f"no readable baseline at {args.baseline};"
                  " skipping throughput gate")
            return 0
        reference = baseline.get("smoke_reference", baseline["levels"])
        ok = True
        for key, row in levels.items():
            ref = reference.get(key)
            if ref is None:
                continue
            floor = (1.0 - REGRESSION_SLACK) * ref["events_per_sec"]
            line = (f"gate flows={key}: {row['events_per_sec']:,.0f}"
                    f" events/s vs floor {floor:,.0f}")
            if row["events_per_sec"] < floor:
                print(f"REGRESSION: {line}", file=sys.stderr)
                ok = False
            else:
                print(line)
        print("smoke:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    levels = run_levels(FULL_ROUNDS)
    # The smoke sweep's own numbers, so the CI gate compares like with
    # like (short runs amortize warm-up differently than full ones).
    print("smoke reference:")
    smoke_reference = run_levels(SMOKE_ROUNDS)
    payload = {
        "benchmark": "flow_alloc",
        "configuration": {
            "levels": list(LEVELS),
            "link_capacity": LINK_CAPACITY,
            "flow_bytes": list(FLOW_BYTES),
        },
        "levels": levels,
        "smoke_reference": smoke_reference,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
