"""Collective-engine benchmark: writes ``BENCH_collectives.json``.

Sweeps the full ``{cluster} x {aggregator size} x {algorithm} x
{parallelism}`` matrix on the simulator, measuring the virtual-time
reduce+gather cost of every registered collective at every channel
count, then asks the cost-model auto-tuner (:mod:`repro.comm.cost`) for
its pick on each cell and scores the decision against the empirical
grid. The acceptance gate: the tuner's choice must land within 10% of
the empirically best candidate on *every* cell; any miss exits non-zero.

Each cell also re-checks bit-identity — every algorithm must reproduce
the ring's float64 bytes exactly, so algorithm choice is purely a
performance decision.

Usage::

    PYTHONPATH=src python benchmarks/collective_matrix.py          # full
    PYTHONPATH=src python benchmarks/collective_matrix.py --smoke  # CI gate

``--smoke`` runs the 2-node cluster at one size only.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.cluster import MB, Cluster, ClusterConfig
from repro.comm import ScalableCommunicator
from repro.comm.cost import CollectiveCostModel, choose_collective
from repro.serde import SizedPayload
from repro.sim import Environment

ALGORITHMS = ("ring", "pipelined_ring", "hd", "hierarchical")
PARALLELISMS = (1, 2, 4, 8)
SIZES_MB = (1, 16, 64)
NODE_COUNTS = (2, 8)
TOLERANCE = 0.10
ELEMS = 64


def run_cell(config: ClusterConfig, algorithm: str, parallelism: int,
             nbytes: float) -> tuple:
    """One reduce+gather; returns (virtual seconds, result bytes)."""
    env = Environment()
    cluster = Cluster(env, config)
    comm = ScalableCommunicator(cluster, parallelism=parallelism)
    rng = np.random.default_rng(3)
    values = [SizedPayload(rng.random(ELEMS), sim_bytes=nbytes)
              for _ in range(comm.size)]
    split = lambda u, i, k: u.split(i, k)  # noqa: E731
    reduce_ = lambda a, b: a.merge(b)  # noqa: E731
    proc = env.process(comm.reduce_scatter_gather(
        values, split, reduce_, SizedPayload.concat,
        algorithm=None if algorithm == "ring" else algorithm))
    result = env.run(until=proc)
    return env.now, result.data.tobytes()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="one cluster, one size (CI gate)")
    args = parser.parse_args()

    node_counts = NODE_COUNTS[:1] if args.smoke else NODE_COUNTS
    sizes_mb = SIZES_MB[:1] if args.smoke else SIZES_MB

    cells = {}
    failures = []
    for nodes in node_counts:
        config = ClusterConfig.bic(num_nodes=nodes)
        # one model per cluster, like one tuner per SparkerContext
        model = CollectiveCostModel.from_config(config)
        probe_cluster = Cluster(Environment(), config)
        slots = probe_cluster.executors
        for size_mb in sizes_mb:
            nbytes = size_mb * MB
            empirical = {}
            ring_bytes = {}  # parallelism fixes the segment grid, so the
            mismatches = []  # bit-identity baseline is per-P ring bytes
            for algorithm in ALGORITHMS:
                for p in PARALLELISMS:
                    seconds, raw = run_cell(config, algorithm, p, nbytes)
                    empirical[(algorithm, p)] = seconds
                    if algorithm == "ring":
                        ring_bytes[p] = raw
                    elif raw != ring_bytes[p]:
                        mismatches.append(f"{algorithm}/P{p}")

            winner, estimates = choose_collective(
                model, nbytes, slots, ALGORITHMS, PARALLELISMS)
            best_key = min(empirical, key=empirical.get)
            best = empirical[best_key]
            chosen = empirical[(winner.algorithm, winner.parallelism)]
            gap = chosen / best - 1.0

            cell_name = f"bic{nodes}_{size_mb}MB"
            ok = gap <= TOLERANCE and not mismatches
            if not ok:
                failures.append(cell_name)
            cells[cell_name] = {
                "nodes": nodes,
                "executors": len(slots),
                "aggregator_bytes": nbytes,
                "empirical_seconds": {
                    f"{a}/P{p}": t for (a, p), t in empirical.items()},
                "empirical_best": {
                    "algorithm": best_key[0], "parallelism": best_key[1],
                    "seconds": best},
                "tuner_choice": {
                    "algorithm": winner.algorithm,
                    "parallelism": winner.parallelism,
                    "predicted_seconds": dict(
                        (f"{pl.algorithm}/P{pl.parallelism}", t)
                        for pl, t in estimates)[
                        f"{winner.algorithm}/P{winner.parallelism}"],
                    "measured_seconds": chosen},
                "tuner_gap_vs_best": gap,
                "within_tolerance": gap <= TOLERANCE,
                "bit_identical": not mismatches,
                "bit_mismatches": mismatches,
            }
            status = "ok" if ok else "FAIL"
            print(f"{cell_name:14s} best={best_key[0]}/P{best_key[1]} "
                  f"{best:.4f}s  tuner={winner.algorithm}/"
                  f"P{winner.parallelism} {chosen:.4f}s "
                  f"(gap {100.0 * gap:+.1f}%) {status}")

            # online loop: fold this cell's measurement into the model,
            # exactly as CollectiveCompleted does in a live job
            predicted = dict(
                ((pl.algorithm, pl.parallelism), t)
                for pl, t in estimates)
            for (algorithm, p), seconds in empirical.items():
                model.observe(algorithm, predicted[(algorithm, p)], seconds)

    report = {
        "benchmark": "collective_matrix",
        "configuration": {
            "cluster": "bic", "node_counts": list(node_counts),
            "sizes_mb": list(sizes_mb), "algorithms": list(ALGORITHMS),
            "parallelisms": list(PARALLELISMS),
            "tolerance": TOLERANCE, "smoke": args.smoke,
        },
        "cells": cells,
        "all_within_tolerance": not failures,
        "notes": (
            "Virtual seconds of one reduce_scatter_gather per cell. The "
            "tuner gap is (measured seconds of the tuner's pick) / (best "
            "measured candidate) - 1; the gate is 10%. Bit-identity vs "
            "the ring is re-checked on every cell, so the tuner can only "
            "trade time, never bytes."
        ),
    }
    target = (Path(__file__).resolve().parent.parent
              / "BENCH_collectives.json")
    if not args.smoke:
        target.write_text(json.dumps(report, indent=2) + "\n",
                          encoding="utf-8")
        print(f"\nwrote {target}")
    else:
        print(json.dumps(report, indent=2))
    if failures:
        print(f"FAILED: tuner outside tolerance (or bit mismatch) in "
              f"{failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
