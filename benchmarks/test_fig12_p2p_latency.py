"""Figure 12: point-to-point latency of BM / SC / MPI messaging.

Paper (BIC): MPI 15.94us; scalable communicator 72.73us (4.56x MPI);
BlockManager-based messaging 3861.25us (242.24x MPI) — the measurement
that justified building the communicator from scratch (§4.1).
"""

import pytest
from conftest import run_once

from repro.bench import fig12_p2p_latency, format_table


def test_fig12_p2p_latency(benchmark, record):
    latencies = run_once(benchmark, fig12_p2p_latency)
    table = format_table(
        ["Stack", "One-way latency (us)", "vs MPI"],
        [(name, round(latencies[name] * 1e6, 2),
          f"{latencies[name] / latencies['MPI']:.2f}x")
         for name in ("BM", "SC", "MPI")],
        title="Figure 12: point-to-point one-way latency (BIC)")
    record("fig12_p2p_latency", table +
           "\n(paper: BM 3861.25us / 242.24x, SC 72.73us / 4.56x, "
           "MPI 15.94us)")

    assert latencies["MPI"] == pytest.approx(15.94e-6, rel=0.02)
    assert latencies["SC"] == pytest.approx(72.73e-6, rel=0.02)
    assert latencies["BM"] == pytest.approx(3861.25e-6, rel=0.02)
    assert latencies["BM"] / latencies["MPI"] == pytest.approx(242.24,
                                                               rel=0.05)
