#!/usr/bin/env python3
"""A tour of the communication substrate (paper §4.1-4.2, Figures 12-15).

Walks through the measurements that drove Sparker's design:

1. point-to-point latency of the three messaging stacks — why the authors
   abandoned BlockManager messaging and built on JeroMQ,
2. throughput vs channel parallelism — why the PDR ring uses 4 channels,
3. ring reduce-scatter vs the MPI reference algorithms — correctness and
   scalability.

Run:  python examples/communicator_tour.py
"""

import numpy as np

from repro.bench import format_seconds, format_table
from repro.cluster import KB, MB, Cluster, ClusterConfig
from repro.comm import (
    MpiCommunicator,
    ScalableCommunicator,
    bm_transport,
    measure_latency,
    measure_throughput,
    mpi_transport,
    sc_transport,
)
from repro.serde import SizedPayload
from repro.sim import Environment


def fresh_cluster(nodes=2):
    env = Environment()
    return Cluster(env, ClusterConfig.bic(num_nodes=nodes))


def latency_tour() -> None:
    rows = []
    for name, factory in (("BlockManager", bm_transport),
                          ("Scalable communicator", sc_transport),
                          ("MPI", mpi_transport)):
        cluster = fresh_cluster()
        lat = measure_latency(cluster, factory(cluster.config))
        rows.append((name, format_seconds(lat)))
    print(format_table(["Stack", "One-way latency"], rows,
                       title="Figure 12: point-to-point latency"))
    print("  (paper: BM 3861.25us, SC 72.73us, MPI 15.94us)\n")


def throughput_tour() -> None:
    rows = []
    for nbytes in (64 * KB, 8 * MB, 256 * MB):
        cells = [f"{nbytes // KB} KB" if nbytes < MB
                 else f"{nbytes // MB} MB"]
        for label, factory, p in (("MPI", mpi_transport, 1),
                                  ("SC-1", sc_transport, 1),
                                  ("SC-4", sc_transport, 4)):
            bw = measure_throughput(fresh_cluster(),
                                    factory(ClusterConfig.bic()),
                                    nbytes, parallelism=p)
            cells.append(f"{bw / MB:.0f} MB/s")
        rows.append(tuple(cells))
    print(format_table(["Message", "MPI", "SC-1", "SC-4"], rows,
                       title="Figure 13: p2p throughput by parallelism"))
    print("  (paper: MPI peaks at 1185 MB/s; SC-4 reaches 97.1% of it)\n")


def reduce_scatter_tour() -> None:
    expected = None
    rows = []
    for label in ("SC ring (P=4)", "MPI ring", "MPI pairwise",
                  "MPI recursive-halving"):
        cluster = fresh_cluster(nodes=4)
        env = cluster.env
        n = cluster.num_executors
        rng = np.random.default_rng(5)
        values = [SizedPayload(rng.integers(0, 10, 64).astype(float),
                               sim_bytes=64 * MB) for _ in range(n)]
        reference = np.sum([v.data for v in values], axis=0)
        split = lambda u, i, k: u.split(i, k)  # noqa: E731
        reduce_ = lambda a, b: a.merge(b)  # noqa: E731
        if label.startswith("SC"):
            comm = ScalableCommunicator(cluster, parallelism=4)
            proc = env.process(comm.reduce_scatter(values, split, reduce_))
        else:
            algorithm = {"MPI ring": "ring", "MPI pairwise": "pairwise",
                         "MPI recursive-halving": "recursive_halving"}[label]
            comm = MpiCommunicator(cluster)
            proc = env.process(comm.reduce_scatter(values, split, reduce_,
                                                   algorithm=algorithm))
        owned = env.run(until=proc)
        segments = {}
        for results in owned.values():
            segments.update(results)
        reassembled = np.concatenate(
            [segments[i].data for i in sorted(segments)])
        assert np.allclose(reassembled, reference), label
        rows.append((label, format_seconds(env.now)))
        expected = reference if expected is None else expected
    print(format_table(["Algorithm", "64MB reduce-scatter, 24 executors"],
                       rows, title="Reduce-scatter algorithm comparison"))
    print("  (all algorithms verified against the exact elementwise sum)")


if __name__ == "__main__":
    latency_tour()
    throughput_tour()
    reduce_scatter_tour()
