#!/usr/bin/env python3
"""An end-user ML pipeline: train, evaluate, and instrument.

Shows the parts of the library around the headline reduction story:

* a train/test split over the avazu surrogate (Table 2),
* accumulators counting records exactly-once during training,
* AUC / precision / recall via BinaryClassificationMetrics,
* the automatic split-op derivation (§6 future work) powering a custom
  aggregator without hand-written splitOp/concatOp.

Run:  python examples/evaluation_pipeline.py
"""

import numpy as np

from repro import AggregationSpec, ClusterConfig, SparkerSession
from repro.core import derive_split_ops
from repro.data import dataset
from repro.ml import BinaryClassificationMetrics, LogisticRegressionWithSGD


class FeatureStats:
    """A custom aggregator: per-feature activity counts + a scalar total.

    No splitOp / reduceOp / concatOp written by hand — they are derived
    from this class's state automatically.
    """

    def __init__(self, dim: int):
        self.hits = np.zeros(dim)
        self.total = 0.0

    def add(self, point) -> "FeatureStats":
        self.hits[point.features.indices] += 1.0
        self.total += 1.0
        return self


def main() -> None:
    spec = dataset("avazu")
    points, _ = spec.generate()
    split_at = int(0.8 * len(points))
    train, test = points[:split_at], points[split_at:]

    sc = SparkerSession(ClusterConfig.bic(num_nodes=4)).context()
    train_rdd = sc.parallelize(train).cache()
    train_rdd.count()

    # --- instrument the data with an exactly-once accumulator -----------
    nnz_total = sc.accumulator(0, name="nnz")
    train_rdd.foreach(lambda p: nnz_total.add(p.features.nnz))
    print(f"training set: {len(train)} samples, "
          f"{nnz_total.value} non-zeros "
          f"(avg {nnz_total.value / len(train):.1f}/sample)")

    # --- dataset profiling through auto-derived split aggregation -------
    ops = derive_split_ops(FeatureStats(spec.surrogate_features))
    stats = train_rdd.split_aggregate(
        lambda: FeatureStats(spec.surrogate_features),
        lambda agg, p: agg.add(p),
        ops.split_op, ops.reduce_op, ops.concat_op,
        AggregationSpec(parallelism=4), merge_op=ops.merge_op)
    busiest = int(np.argmax(stats.hits))
    print(f"feature activity (auto-split aggregation): busiest feature "
          f"#{busiest} appears in {int(stats.hits[busiest])} samples; "
          f"{int((stats.hits > 0).sum())} features active")
    assert stats.total == len(train)

    # --- train with split aggregation, evaluate on held-out data --------
    model = LogisticRegressionWithSGD.train(
        train_rdd, spec.surrogate_features,
        num_iterations=15, step_size=2.0, aggregation="split",
        size_scale=spec.size_scale, sample_scale=spec.compute_scale)
    train_metrics = BinaryClassificationMetrics.from_model(model, train)
    test_metrics = BinaryClassificationMetrics.from_model(model, test)
    print(f"\nevaluation (train {len(train)} / held-out {len(test)}):")
    print(f"  train AUC : {train_metrics.area_under_roc():.3f}")
    print(f"  test AUC  : {test_metrics.area_under_roc():.3f}  "
          f"(4000 features from 2400 samples: generalization is hard)")
    print(f"  accuracy  : {test_metrics.accuracy_at(0.0):.3f}")
    print(f"  precision : {test_metrics.precision_at(0.0):.3f}")
    print(f"  recall    : {test_metrics.recall_at(0.0):.3f}")
    agg_time = (sc.stopwatch.total("agg.compute")
                + sc.stopwatch.total("agg.reduce"))
    print(f"\nsimulated cluster time: {sc.now:.1f}s "
          f"(aggregation: {agg_time:.1f}s)")
    assert train_metrics.area_under_roc() > 0.9
    assert test_metrics.area_under_roc() > 0.6


if __name__ == "__main__":
    main()
