#!/usr/bin/env python3
"""Using the split aggregation interface directly (paper Figures 6/7).

The SAI is not LR/SVM/LDA-specific: anything whose aggregator can be
sliced into independently-mergeable segments gets a scalable reduction.
This example implements the paper's Figure 7 structure literally — an
``Agg`` holding *two* arrays (sum1, sum2) plus a merge-only ``AggSeg`` —
for a per-feature statistics job (mean and variance over a wide dataset),
and compares tree vs split aggregation on an 8-node cluster.

Run:  python examples/custom_split_aggregation.py
"""

from typing import List, Sequence

import numpy as np

from repro import AggregationSpec, ClusterConfig, MB, SparkerSession
from repro.serde import segment_range

DIM = 4_096  # features per record
RECORDS = 384


class StatsAgg:
    """Figure 7's ``Agg``: two arrays (sum1=sums, sum2=sums of squares)."""

    def __init__(self, dim: int, scale: float):
        self.sum1 = np.zeros(dim)
        self.sum2 = np.zeros(dim)
        self.count = 0.0
        self.scale = scale  # simulated-size multiplier (paper-scale dims)

    def add(self, row: np.ndarray) -> "StatsAgg":
        """seqOp body: fold one record in."""
        self.sum1 += row
        self.sum2 += row * row
        self.count += 1
        return self

    def merge(self, other: "StatsAgg") -> "StatsAgg":
        """Whole-aggregator merge (the IMM merge_op)."""
        self.sum1 += other.sum1
        self.sum2 += other.sum2
        self.count += other.count
        return self

    def __sim_size__(self) -> float:
        return (self.sum1.nbytes + self.sum2.nbytes + 8) * self.scale


class StatsSeg:
    """Figure 7's ``AggSeg``: merge-only slices of both arrays."""

    def __init__(self, sum1: np.ndarray, sum2: np.ndarray, count: float,
                 sim_bytes: float):
        self.sum1 = sum1
        self.sum2 = sum2
        self.count = count
        self.sim_bytes = sim_bytes

    def merge(self, other: "StatsSeg") -> "StatsSeg":
        return StatsSeg(self.sum1 + other.sum1, self.sum2 + other.sum2,
                        self.count + other.count, self.sim_bytes)

    def __sim_size__(self) -> float:
        return self.sim_bytes


def split_op(agg: StatsAgg, i: int, n: int) -> StatsSeg:
    """Figure 7's splitA applied to both arrays."""
    lo, hi = segment_range(DIM, n, i)
    frac = (hi - lo) / DIM
    # Only segment 0 carries the record count (a scalar can't be sliced).
    return StatsSeg(agg.sum1[lo:hi], agg.sum2[lo:hi],
                    agg.count if i == 0 else 0.0,
                    (agg.sum1.nbytes + agg.sum2.nbytes) * agg.scale * frac)


def concat_op(segments: Sequence[StatsSeg]) -> StatsSeg:
    """Figure 7's concatA for both arrays."""
    return StatsSeg(np.concatenate([s.sum1 for s in segments]),
                    np.concatenate([s.sum2 for s in segments]),
                    sum(s.count for s in segments),
                    sum(s.sim_bytes for s in segments))


def run(aggregation: str):
    sc = SparkerSession(ClusterConfig.bic(num_nodes=8)).context()
    rng = np.random.default_rng(7)
    rows: List[np.ndarray] = [3.0 + 2.0 * rng.standard_normal(DIM)
                              for _ in range(RECORDS)]
    rdd = sc.parallelize(rows, sc.default_parallelism).cache()
    rdd.count()
    scale = (64 * MB) / (2 * DIM * 8)  # pose as a 64 MB aggregator

    t0 = sc.now
    if aggregation == "tree":
        agg = rdd.tree_aggregate(
            lambda: StatsAgg(DIM, scale),
            lambda acc, row: acc.add(row),
            lambda a, b: a.merge(b))
        result = split_op(agg, 0, 1)  # view it as one whole segment
    else:
        result = rdd.split_aggregate(
            lambda: StatsAgg(DIM, scale),
            lambda acc, row: acc.add(row),
            split_op,
            lambda a, b: a.merge(b),
            concat_op,
            AggregationSpec(parallelism=4),
            merge_op=lambda a, b: a.merge(b))
    elapsed = sc.now - t0
    mean = result.sum1 / result.count
    var = result.sum2 / result.count - mean ** 2
    return elapsed, mean, var, rows


def main() -> None:
    print("=== Custom split aggregation: per-feature mean/variance ===\n")
    tree_time, tree_mean, tree_var, rows = run("tree")
    split_time, split_mean, split_var, _ = run("split")

    reference = np.stack(rows)
    assert np.allclose(tree_mean, reference.mean(axis=0))
    assert np.allclose(split_mean, tree_mean)
    assert np.allclose(split_var, tree_var)
    print(f"feature mean ~ {tree_mean.mean():.3f} (population 3.0), "
          f"variance ~ {tree_var.mean():.3f} (population 4.0)")
    print("tree and split results identical: True\n")
    print(f"tree aggregation : {tree_time:8.3f} simulated seconds")
    print(f"split aggregation: {split_time:8.3f} simulated seconds")
    print(f"speedup          : {tree_time / split_time:8.2f}x")


if __name__ == "__main__":
    main()
