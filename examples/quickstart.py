#!/usr/bin/env python3
"""Quickstart: train logistic regression on a simulated cluster, both ways.

Builds a 2-node simulated BIC cluster, generates a sparse classification
dataset, and trains MLlib-style logistic regression twice — once with
vanilla Spark's treeAggregate and once with Sparker's splitAggregate — to
show (a) both produce *identical* models and (b) split aggregation spends
far less simulated time reducing.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AggregationSpec, ClusterConfig, SparkerSession
from repro.bench import BreakdownRecorder
from repro.data import sparse_classification
from repro.ml import LogisticRegressionWithSGD

NUM_FEATURES = 2_000
NUM_SAMPLES = 2_000
ITERATIONS = 8

#: every reduction knob lives on one immutable spec; the default is the
#: paper's parallel directed ring with 4 channels. Try
#: ``AggregationSpec(collective="auto")`` to let the cost-model tuner pick
#: the collective + parallelism per aggregation.
SPEC = AggregationSpec(parallelism=4)


def train(aggregation: str):
    """Train once with the given aggregation backend."""
    sc = SparkerSession(ClusterConfig.bic(num_nodes=2)).context()
    points, _true_w = sparse_classification(
        NUM_SAMPLES, NUM_FEATURES, nnz_per_sample=12, seed=42)
    rdd = sc.parallelize(points).cache()
    rdd.count()  # materialize the cache before the measured window

    recorder = BreakdownRecorder(sc)
    model = LogisticRegressionWithSGD.train(
        rdd, NUM_FEATURES,
        num_iterations=ITERATIONS, step_size=2.0,
        aggregation=aggregation,
        spec=SPEC,
        # Pretend the 2k-dim surrogate stands for a 2M-dim paper-scale
        # model so the aggregator is big enough for reduction to matter.
        size_scale=1_000.0,
    )
    breakdown = recorder.finish()
    return sc, model, breakdown, points


def main() -> None:
    sc_tree, tree_model, tree_times, points = train("tree")
    sc_split, split_model, split_times, _ = train("split")

    print("=== Sparker quickstart: LR on a simulated 2-node cluster ===\n")
    print(f"training accuracy      : {tree_model.accuracy(points):.3f}")
    print(f"loss trajectory        : {tree_model.losses[0]:.4f} -> "
          f"{tree_model.losses[-1]:.4f}")
    identical = np.allclose(tree_model.weights, split_model.weights)
    print(f"tree == split weights  : {identical}\n")

    print(f"{'':24s}{'Spark (tree)':>14s}{'Sparker (split)':>16s}")
    for label, a, b in [
        ("aggregation compute", tree_times.agg_compute,
         split_times.agg_compute),
        ("aggregation reduce", tree_times.agg_reduce,
         split_times.agg_reduce),
        ("driver", tree_times.driver, split_times.driver),
        ("end-to-end", tree_times.total, split_times.total),
    ]:
        print(f"{label:24s}{a:13.2f}s{b:15.2f}s")
    speedup = tree_times.total / split_times.total
    print(f"\nSparker end-to-end speedup over Spark: {speedup:.2f}x")
    assert identical, "backends must agree numerically"


if __name__ == "__main__":
    main()
