#!/usr/bin/env python3
"""Topic modeling at scale: LDA-N, the paper's hardest workload.

LDA's aggregator is the expected topic-word count matrix — K x V doubles,
~82 MB for nytimes at K=100 — which is why LDA-N dominates the paper's
scalability analysis (Figures 3/4/18). This example:

1. trains LDA by distributed EM on the nytimes surrogate corpus,
2. shows the planted topics are actually recovered (this is a real topic
   model, not a cost mock),
3. runs the paper's strong-scaling experiment: Spark vs Sparker on growing
   AWS slices, with the 4-way time decomposition of Figure 18.

Run:  python examples/topic_modeling.py
"""

import numpy as np

from repro import AggregationSpec, ClusterConfig, SparkerSession
from repro.bench import BreakdownRecorder, format_table
from repro.bench.experiments import aws_config_for_cores
from repro.data import SURROGATE_LDA_TOPICS, dataset
from repro.ml import LDA

ITERATIONS = 2


def topic_recovery_demo() -> None:
    """Show EM actually finds the planted topics on a small corpus."""
    from repro.data import lda_corpus

    sc = SparkerSession(ClusterConfig.laptop()).context()
    docs, true_topics = lda_corpus(n_docs=400, vocab_size=80, n_topics=4,
                                   doc_length=60, seed=11)
    rdd = sc.parallelize(docs, 8).cache()
    rdd.count()
    model = LDA(k=4, num_iterations=15, aggregation="split",
                spec=AggregationSpec(parallelism=2), seed=3).fit(rdd, 80)

    print("log-likelihood trajectory (should rise):")
    traj = model.log_likelihoods
    print("  " + " -> ".join(f"{v:.0f}" for v in traj[::4] + [traj[-1]]))

    # Match each learned topic to its closest planted topic by cosine.
    learned = model.topics / np.linalg.norm(model.topics, axis=1,
                                            keepdims=True)
    planted = true_topics / np.linalg.norm(true_topics, axis=1,
                                           keepdims=True)
    similarity = learned @ planted.T
    best = similarity.max(axis=1)
    print(f"topic recovery (cosine vs planted): "
          f"{', '.join(f'{v:.2f}' for v in sorted(best, reverse=True))}\n")


def strong_scaling_demo() -> None:
    """Figure 18 in miniature: LDA-N on AWS slices, Spark vs Sparker."""
    spec = dataset("nytimes")
    docs, _ = spec.generate()
    rows = []
    for cores in (96, 480):
        for label, aggregation in (("Spark", "tree"), ("Sparker", "split")):
            config = aws_config_for_cores(cores)
            sc = SparkerSession(config).context()
            rdd = sc.parallelize(docs, sc.default_parallelism).cache()
            rdd.count()
            recorder = BreakdownRecorder(sc)
            LDA(k=SURROGATE_LDA_TOPICS, num_iterations=ITERATIONS,
                aggregation=aggregation,
                size_scale=spec.size_scale,
                sample_scale=spec.compute_scale).fit(
                    rdd, spec.surrogate_features)
            b = recorder.finish()
            rows.append((cores, label, round(b.agg_compute, 2),
                         round(b.agg_reduce, 2), round(b.driver, 2),
                         round(b.non_agg, 2), round(b.total, 2)))
    print(format_table(
        ["Cores", "Engine", "Agg-compute", "Agg-reduce", "Driver",
         "Non-agg", "Total"],
        rows, title="LDA-N strong scaling on AWS (simulated seconds, "
                    f"{ITERATIONS} EM iterations)"))
    by_key = {(c, e): t for c, e, *_rest, t in rows}
    for cores in (96, 480):
        speedup = by_key[(cores, "Spark")] / by_key[(cores, "Sparker")]
        print(f"  {cores} cores: Sparker {speedup:.2f}x faster end-to-end")


if __name__ == "__main__":
    print("=== Part 1: the model is real (topic recovery) ===\n")
    topic_recovery_demo()
    print("=== Part 2: the paper's scalability story (Figure 18) ===\n")
    strong_scaling_demo()
