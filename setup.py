"""Setuptools entry point.

The evaluation environment has no network and no `wheel` package, so the
PEP 517 editable path is unavailable; this file keeps the legacy
``pip install -e . --no-use-pep517 --no-build-isolation`` path working.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
